#!/usr/bin/env python3
"""Compare a freshly generated bench JSON against the committed baseline.

Usage:
    check_bench.py BASELINE CURRENT [--tolerance 0.25]

Walks both documents and compares every numeric leaf present in the
baseline within a relative tolerance (default +-25%). Wall-clock keys
(anything containing "seconds", "speedup", "ms_per" or "hit_rate") are
skipped: they depend on the host, while the remaining counters are
deterministic outputs of the search and must not drift silently.

BENCH_search.json additionally carries the branch-and-bound acceptance
floor: the full-evaluation reduction of the bounded search over the
exhaustive one must stay >= 5x.

Exit status: 0 clean, 1 on any regression, 2 on usage/IO errors.
"""

import argparse
import json
import sys

SKIP_SUBSTRINGS = ("seconds", "speedup", "ms_per", "hit_rate")

# (path-suffix, floor): hard minimums the current run must clear regardless
# of what the baseline says.
FLOORS = {"full_evaluation_reduction": 5.0}


def flatten(doc):
    out = {}
    def walk(node, path):
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, path + (key,))
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            out[".".join(path)] = float(node)
    walk(doc, ())
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = flatten(json.load(f))
        with open(args.current) as f:
            current = flatten(json.load(f))
    except (OSError, ValueError) as err:
        print(f"check_bench: {err}", file=sys.stderr)
        return 2

    failures = []
    for path, base in sorted(baseline.items()):
        if any(s in path for s in SKIP_SUBSTRINGS):
            continue
        if path not in current:
            failures.append(f"{path}: missing from current run (baseline {base:g})")
            continue
        cur = current[path]
        limit = abs(base) * args.tolerance
        if abs(cur - base) > limit:
            failures.append(
                f"{path}: {cur:g} deviates from baseline {base:g} "
                f"by more than {args.tolerance:.0%}")

    for suffix, floor in FLOORS.items():
        for path, cur in current.items():
            if path.endswith(suffix) and cur < floor:
                failures.append(f"{path}: {cur:g} below the hard floor {floor:g}")

    checked = sum(
        1 for p in baseline if not any(s in p for s in SKIP_SUBSTRINGS))
    if failures:
        print(f"check_bench: {len(failures)} regression(s) vs {args.baseline}:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"check_bench: {checked} counters within "
          f"{args.tolerance:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
