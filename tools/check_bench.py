#!/usr/bin/env python3
"""Compare a freshly generated bench JSON against the committed baseline.

Usage:
    check_bench.py BASELINE CURRENT [--tolerance 0.25]

Walks both documents and compares every numeric leaf present in the
baseline within a relative tolerance (default +-25%). Wall-clock keys
(anything containing "seconds", "speedup", "ms_per", "hit_rate" or
"per_second") are skipped: they depend on the host, while the remaining
counters are deterministic outputs of the search and simulator and must
not drift silently.

Some baselines additionally carry acceptance floors: BENCH_search.json
requires the full-evaluation reduction of the bounded search over the
exhaustive one to stay >= 5x, the evaluation kernel's serve-scale
wall-clock speedup over the scalar reference to stay >= 10x, and the
SIMD-dispatched batched kernel's speedup over the forced-scalar tier to
stay >= 1.5x;
BENCH_simulate.json requires the uniform-trace ranking agreement with
Eq. 10 to be exactly 1.0; BENCH_floorplan.json requires every legal
floorplan to cover its Eq. 10 estimate and the placement-true re-ranking
to be identical across search thread counts (both exactly 1.0). Floors
are exempt from the wall-clock skip
(ratio floors compare runs on the same host), and a floor key missing
from the current run is itself a failure.

Exit status: 0 clean, 1 on any regression, 2 on usage/IO errors.
"""

import argparse
import json
import sys

SKIP_SUBSTRINGS = ("seconds", "speedup", "ms_per", "hit_rate", "per_second")

# (path-suffix, floor): hard minimums the current run must clear regardless
# of what the baseline says.
FLOORS = {
    "full_evaluation_reduction": 5.0,
    # BENCH_search.json: serve-scale wall ratios of the evaluation kernel.
    # kernel_wall_speedup is the scalar *reference* evaluator vs the active
    # kernel tier; on the deeply adaptive serve population (hundreds of
    # configurations) the measured value is ~70x, so 10x is a conservative
    # floor with ample headroom for slower CI hosts. batch_eval_speedup is
    # the forced-scalar word kernel (the §4d tier) vs the SIMD-dispatched
    # batched entry point — the §4e acceptance ratio, measured ~2x.
    "kernel_wall_speedup": 10.0,
    "batch_eval_speedup": 1.5,
    # BENCH_simulate.json: the fraction of candidate-scheme pairs whose
    # simulated uniform-trace cost orders exactly like their Eq. 10 frame
    # sums (ties included). The simulator's headline contract — anything
    # below 1.0 is a correctness bug, not a perf regression.
    "uniform_ranking_agreement": 1.0,
    # BENCH_floorplan.json: fraction of legal floorplans whose placed frame
    # total covers the Eq. 10 estimate (tiles round up, never down), and the
    # fraction of designs whose placement-true re-ranking is identical at
    # search thread counts {1, 4, 16}. Both are correctness contracts of the
    # floorplan subsystem, not perf metrics.
    "placement_dominates_agreement": 1.0,
    "thread_identity_agreement": 1.0,
    # BENCH_serve.json: warm designs/sec of the epoll reactor over the
    # legacy thread-per-connection layer at 1024 pipelined connections and
    # equal worker counts — the serve-path tentpole's acceptance ratio,
    # measured ~7x on the reference host. Same-host ratio, so it is exempt
    # from the wall-clock skip like the other floors.
    "serve_speedup_1024": 5.0,
}

# Host-dependent keys that are *deliberately* neither drift-checked nor
# floored: raw wall clocks and the ratios derived from them (their inputs
# are drift-checked counters, so a real regression still surfaces there).
# check_invariants.py cross-checks this registry against the committed
# baselines: a new BENCH key must either drift-check, carry a floor, or be
# declared here — nothing bypasses gating silently. Keyed by baseline file.
INFORMATIONAL = {
    "BENCH_search.json": {
        "bounded.wall_seconds",
        "exhaustive.wall_seconds",
        "wall_speedup_vs_exhaustive",
        "fig7_eval_speedup",
        "simd_kernel_speedup",
        "kernel.fig7_reference_seconds",
        "kernel.fig7_kernel_seconds",
        "kernel.serve_reference_seconds",
        "kernel.serve_kernel_seconds",
        "kernel.serve_scalar_kernel_seconds",
        "kernel.serve_batch_seconds",
    },
    "BENCH_sweep.json": {
        "wall_seconds",
        "ms_per_design",
        "speedup.total_vs_modular",
        "speedup.total_vs_single",
        "speedup.worst_vs_modular",
        "speedup.worst_vs_single",
    },
    "BENCH_simulate.json": {
        "uniform.wall_seconds",
        "markov.wall_seconds",
        "markov.transitions_per_second",
        "prefetch.wall_seconds",
        "prefetch.prefetch_hit_rate",
    },
    "BENCH_floorplan.json": {
        "rerank_wall_seconds",
        "identity_wall_seconds",
    },
    "BENCH_serve.json": {
        "epoll.warm_c64.wall_seconds",
        "epoll.warm_c64.designs_per_second",
        "epoll.warm_c256.wall_seconds",
        "epoll.warm_c256.designs_per_second",
        "epoll.warm_c1024.wall_seconds",
        "epoll.warm_c1024.designs_per_second",
        "epoll.cold_c64.wall_seconds",
        "epoll.cold_c64.designs_per_second",
        "epoll.p50_latency_seconds",
        "epoll.p99_latency_seconds",
        "threads.warm_c64.wall_seconds",
        "threads.warm_c64.designs_per_second",
        "threads.warm_c256.wall_seconds",
        "threads.warm_c256.designs_per_second",
        "threads.warm_c1024.wall_seconds",
        "threads.warm_c1024.designs_per_second",
        "threads.cold_c64.wall_seconds",
        "threads.cold_c64.designs_per_second",
        "threads.p50_latency_seconds",
        "threads.p99_latency_seconds",
    },
}


def flatten(doc):
    out = {}
    def walk(node, path):
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, path + (key,))
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            out[".".join(path)] = float(node)
    walk(doc, ())
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25)
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = flatten(json.load(f))
        with open(args.current) as f:
            current = flatten(json.load(f))
    except (OSError, ValueError) as err:
        print(f"check_bench: {err}", file=sys.stderr)
        return 2

    failures = []
    for path, base in sorted(baseline.items()):
        if any(s in path for s in SKIP_SUBSTRINGS):
            continue
        if path not in current:
            failures.append(f"{path}: missing from current run (baseline {base:g})")
            continue
        cur = current[path]
        limit = abs(base) * args.tolerance
        if abs(cur - base) > limit:
            failures.append(
                f"{path}: {cur:g} deviates from baseline {base:g} "
                f"by more than {args.tolerance:.0%}")

    floored = {suffix: False for suffix in FLOORS}
    for suffix, floor in FLOORS.items():
        for path, cur in current.items():
            if not path.endswith(suffix):
                continue
            floored[suffix] = True
            if cur < floor:
                failures.append(f"{path}: {cur:g} below the hard floor {floor:g}")
    # A floor can only vouch for what it measured: if the current run does
    # not report the key at all (stale binary, renamed field), fail loudly
    # instead of silently passing. Baselines without the key (BENCH_sweep)
    # are fine -- floors only bind documents that carry the metric in the
    # committed baseline.
    for suffix, seen in floored.items():
        if not seen and any(p.endswith(suffix) for p in baseline):
            failures.append(f"{suffix}: floored key missing from current run")

    checked = sum(
        1 for p in baseline if not any(s in p for s in SKIP_SUBSTRINGS))
    if failures:
        print(f"check_bench: {len(failures)} regression(s) vs {args.baseline}:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"check_bench: {checked} counters within "
          f"{args.tolerance:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
