#!/usr/bin/env python3
"""Cross-check project invariants that span code, docs and CI gating.

Usage:
    check_invariants.py [--repo PATH]

Three families of drift this linter makes impossible to land silently:

  1. Diagnostics: every diagnostic code constructed in src/analysis,
     src/sim or src/floorplan must be catalogued in docs/diagnostics.md
     *and* exercised by at least one test under tests/.
  2. Stats counters: every key the serving protocol emits -- the stats
     snapshot in src/server/stats.cpp and the per-job stats blocks in
     src/server/protocol.cpp -- must appear in docs/protocol.md.
  3. Bench gating: every numeric key in the committed BENCH_*.json
     baselines must be covered by tools/check_bench.py -- drift-checked,
     held to a hard floor, or explicitly declared informational. Stale
     registry entries (declared but absent from the baseline) also fail.

Exit status: 0 clean, 1 on any violation, 2 on usage/IO errors.
"""

import argparse
import importlib.util
import json
import pathlib
import re
import sys

# How diagnostics are constructed in the checked subsystems. Every code is
# a lowercase dashed literal next to its severity / error helper / .code
# assignment, so these three shapes cover all construction sites.
DIAG_PATTERNS = (
    re.compile(r'Severity::\w+\s*,\s*"([a-z][a-z0-9-]*)"'),
    re.compile(r'\berror\(\s*"([a-z][a-z0-9-]*)"'),
    re.compile(r'\.code\s*=\s*"([a-z][a-z0-9-]*)"'),
)
DIAG_DIRS = ("src/analysis", "src/sim", "src/floorplan")

STATS_SOURCES = ("src/server/stats.cpp", "src/server/protocol.cpp")
SET_KEY = re.compile(r'\.set\("([a-z][a-z0-9_]*)"')
# Presentation-only envelope keys of protocol.cpp that are not counters;
# still required to be documented, so no exemption list is needed.


def find_diagnostic_codes(repo):
    """{code: first 'file:line' that constructs it} over the checked dirs."""
    codes = {}
    for rel in DIAG_DIRS:
        for path in sorted((repo / rel).rglob("*.cpp")):
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                for pattern in DIAG_PATTERNS:
                    for code in pattern.findall(line):
                        where = f"{path.relative_to(repo)}:{lineno}"
                        codes.setdefault(code, where)
    return codes


def check_diagnostics(repo, failures):
    codes = find_diagnostic_codes(repo)
    if not codes:
        failures.append(
            "diagnostics: no codes found under "
            f"{', '.join(DIAG_DIRS)} -- the extraction patterns in "
            "tools/check_invariants.py no longer match the code; update "
            "DIAG_PATTERNS rather than letting the check rot")
        return
    catalogue = (repo / "docs/diagnostics.md").read_text()
    tests = "\n".join(
        p.read_text() for p in sorted((repo / "tests").rglob("*.cpp")))
    for code, where in sorted(codes.items()):
        if f"`{code}`" not in catalogue:
            failures.append(
                f"diagnostics: `{code}` (constructed at {where}) is not "
                "catalogued in docs/diagnostics.md -- add a row to the "
                "diagnostic catalogue table")
        if f'"{code}"' not in tests:
            failures.append(
                f"diagnostics: `{code}` (constructed at {where}) has no "
                "test under tests/ asserting on it -- add a fixture that "
                "triggers the diagnostic and checks its code")


def check_stats_docs(repo, failures):
    protocol_md = (repo / "docs/protocol.md").read_text()
    for rel in STATS_SOURCES:
        source = repo / rel
        for lineno, line in enumerate(
                source.read_text().splitlines(), start=1):
            for key in SET_KEY.findall(line):
                if not re.search(rf"\b{re.escape(key)}\b", protocol_md):
                    failures.append(
                        f"stats: wire key \"{key}\" ({rel}:{lineno}) is not "
                        "documented in docs/protocol.md -- every counter "
                        "the protocol emits must be described there")


def load_check_bench(repo):
    spec = importlib.util.spec_from_file_location(
        "check_bench", repo / "tools/check_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def check_bench_coverage(repo, failures):
    bench = load_check_bench(repo)
    baselines = sorted(repo.glob("BENCH_*.json"))
    if not baselines:
        failures.append("bench: no BENCH_*.json baselines found at the "
                        "repo root -- did the layout move?")
        return
    floor_suffix_used = {suffix: False for suffix in bench.FLOORS}
    for path in baselines:
        flat = bench.flatten(json.loads(path.read_text()))
        informational = bench.INFORMATIONAL.get(path.name, set())
        for key in sorted(flat):
            floored = any(key.endswith(s) for s in bench.FLOORS)
            for suffix in bench.FLOORS:
                if key.endswith(suffix):
                    floor_suffix_used[suffix] = True
            drift_checked = not any(
                s in key for s in bench.SKIP_SUBSTRINGS)
            if floored or drift_checked:
                continue
            if key not in informational:
                failures.append(
                    f"bench: {path.name} key \"{key}\" is neither "
                    "drift-checked (matches a SKIP_SUBSTRINGS pattern), "
                    "floored (FLOORS), nor declared in INFORMATIONAL in "
                    "tools/check_bench.py -- pick one so the metric "
                    "cannot regress silently")
        for key in sorted(informational - set(flat)):
            failures.append(
                f"bench: INFORMATIONAL[\"{path.name}\"] declares \"{key}\" "
                "but the committed baseline has no such key -- remove the "
                "stale entry from tools/check_bench.py")
    for name in sorted(set(bench.INFORMATIONAL) -
                       {p.name for p in baselines}):
        failures.append(
            f"bench: INFORMATIONAL names baseline \"{name}\" which does "
            "not exist -- remove the stale file entry from "
            "tools/check_bench.py")
    for suffix, used in sorted(floor_suffix_used.items()):
        if not used:
            failures.append(
                f"bench: FLOORS suffix \"{suffix}\" matches no key in any "
                "committed baseline -- the floor gates nothing; fix the "
                "suffix or drop it from tools/check_bench.py")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repo", default=pathlib.Path(__file__).resolve().parent.parent,
        type=pathlib.Path, help="repository root (default: ../ of this file)")
    args = parser.parse_args()
    repo = args.repo.resolve()
    if not (repo / "docs/protocol.md").is_file():
        print(f"check_invariants: {repo} does not look like the repo root",
              file=sys.stderr)
        return 2

    failures = []
    check_diagnostics(repo, failures)
    check_stats_docs(repo, failures)
    check_bench_coverage(repo, failures)

    if failures:
        print(f"check_invariants: {len(failures)} violation(s):")
        for line in failures:
            print(f"  {line}")
        return 1
    print("check_invariants: diagnostics, stats docs and bench gating "
          "are consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
