#include "device/resources.hpp"

#include <gtest/gtest.h>

namespace prpart {
namespace {

TEST(ResourceVec, DefaultIsZero) {
  ResourceVec r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r, ResourceVec(0, 0, 0));
}

TEST(ResourceVec, Addition) {
  const ResourceVec a{10, 2, 3};
  const ResourceVec b{5, 1, 0};
  EXPECT_EQ(a + b, ResourceVec(15, 3, 3));
  ResourceVec c = a;
  c += b;
  EXPECT_EQ(c, ResourceVec(15, 3, 3));
}

TEST(ResourceVec, FitsIn) {
  const ResourceVec cap{100, 10, 20};
  EXPECT_TRUE(ResourceVec(100, 10, 20).fits_in(cap));
  EXPECT_TRUE(ResourceVec(0, 0, 0).fits_in(cap));
  EXPECT_FALSE(ResourceVec(101, 0, 0).fits_in(cap));
  EXPECT_FALSE(ResourceVec(0, 11, 0).fits_in(cap));
  EXPECT_FALSE(ResourceVec(0, 0, 21).fits_in(cap));
}

TEST(ResourceVec, ElementwiseMax) {
  EXPECT_EQ(elementwise_max({1, 5, 3}, {4, 2, 3}), ResourceVec(4, 5, 3));
  EXPECT_EQ(elementwise_max({0, 0, 0}, {0, 0, 0}), ResourceVec(0, 0, 0));
}

TEST(ResourceVec, ToStringMentionsAllFields) {
  const std::string s = ResourceVec{7, 8, 9}.to_string();
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("8"), std::string::npos);
  EXPECT_NE(s.find("9"), std::string::npos);
}

}  // namespace
}  // namespace prpart
