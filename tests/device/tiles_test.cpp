#include "device/tiles.hpp"

#include <gtest/gtest.h>

namespace prpart {
namespace {

TEST(Tiles, ArchitectureConstantsMatchPaper) {
  // §IV-B verbatim.
  EXPECT_EQ(arch::kClbsPerTile, 20u);
  EXPECT_EQ(arch::kDspsPerTile, 8u);
  EXPECT_EQ(arch::kBramsPerTile, 4u);
  EXPECT_EQ(arch::kFramesPerClbTile, 36u);
  EXPECT_EQ(arch::kFramesPerDspTile, 28u);
  EXPECT_EQ(arch::kFramesPerBramTile, 30u);
  EXPECT_EQ(arch::kWordsPerFrame, 41u);
  EXPECT_EQ(arch::kBitsPerFrame, 1312u);
  EXPECT_EQ(arch::kBitsPerFrame, arch::kWordsPerFrame * 32u);
}

TEST(Tiles, TilesForRoundsUp) {
  const TileCount t = tiles_for({21, 5, 9});
  EXPECT_EQ(t.clb_tiles, 2u);   // ceil(21/20)
  EXPECT_EQ(t.bram_tiles, 2u);  // ceil(5/4)
  EXPECT_EQ(t.dsp_tiles, 2u);   // ceil(9/8)
}

TEST(Tiles, TilesForExactBoundaries) {
  const TileCount t = tiles_for({40, 8, 16});
  EXPECT_EQ(t.clb_tiles, 2u);
  EXPECT_EQ(t.bram_tiles, 2u);
  EXPECT_EQ(t.dsp_tiles, 2u);
}

TEST(Tiles, TilesForZero) {
  EXPECT_EQ(tiles_for({0, 0, 0}), TileCount{});
  EXPECT_EQ(frames_for({0, 0, 0}), 0u);
}

TEST(Tiles, FramesFollowEq6) {
  const TileCount t{3, 2, 1};
  EXPECT_EQ(t.frames(), 3u * 36 + 2u * 30 + 1u * 28);
}

TEST(Tiles, ResourcesAfterRounding) {
  const TileCount t = tiles_for({21, 1, 1});
  EXPECT_EQ(t.resources(), ResourceVec(40, 4, 8));
}

TEST(Tiles, FramesForSingleMode) {
  // A mode with 818 CLBs and 34 DSPs (matched filter, Table II):
  // ceil(818/20)=41 CLB tiles, ceil(34/8)=5 DSP tiles.
  EXPECT_EQ(frames_for({818, 0, 34}), 41u * 36 + 5u * 28);
}

TEST(Tiles, FramesMonotoneInResources) {
  const ResourceVec small{100, 2, 4};
  const ResourceVec big{101, 2, 4};
  EXPECT_LE(frames_for(small), frames_for(big));
}

}  // namespace
}  // namespace prpart
