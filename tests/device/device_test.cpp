#include "device/device.hpp"

#include <gtest/gtest.h>

#include "device/tiles.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

TEST(Device, ColumnsCoverCapacity) {
  const Device d("test", {400, 16, 16}, 2);
  // Columns x rows must provide at least the declared capacity.
  EXPECT_GE(d.column_count(BlockType::Clb) * arch::kClbsPerTile * d.rows(),
            400u);
  EXPECT_GE(d.column_count(BlockType::Bram) * arch::kBramsPerTile * d.rows(),
            16u);
  EXPECT_GE(d.column_count(BlockType::Dsp) * arch::kDspsPerTile * d.rows(),
            16u);
}

TEST(Device, SpecialColumnsAreInterleaved) {
  const Device d("test", {2000, 40, 40}, 2);
  // No special column should sit at the very start when CLB columns exist,
  // and consecutive specials should be separated by CLB columns somewhere.
  const auto& cols = d.columns();
  ASSERT_FALSE(cols.empty());
  EXPECT_EQ(cols.front(), BlockType::Clb);
  bool found_clb_after_special = false;
  for (std::size_t i = 1; i < cols.size(); ++i)
    if (cols[i - 1] != BlockType::Clb && cols[i] == BlockType::Clb)
      found_clb_after_special = true;
  EXPECT_TRUE(found_clb_after_special);
}

TEST(Device, TileResourcesMatchColumnType) {
  const Device d("test", {400, 8, 8}, 2);
  for (std::size_t c = 0; c < d.columns().size(); ++c) {
    const ResourceVec r = d.tile_resources(c);
    switch (d.columns()[c]) {
      case BlockType::Clb:
        EXPECT_EQ(r, ResourceVec(arch::kClbsPerTile, 0, 0));
        break;
      case BlockType::Bram:
        EXPECT_EQ(r, ResourceVec(0, arch::kBramsPerTile, 0));
        break;
      case BlockType::Dsp:
        EXPECT_EQ(r, ResourceVec(0, 0, arch::kDspsPerTile));
        break;
    }
  }
}

TEST(Device, InvalidConstruction) {
  EXPECT_THROW(Device("x", {100, 0, 0}, 0), InternalError);
  EXPECT_THROW(Device("x", {0, 10, 0}, 2), InternalError);
}

TEST(DeviceLibrary, Virtex5IsSortedAscending) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  ASSERT_GE(lib.devices().size(), 9u);
  for (std::size_t i = 1; i < lib.devices().size(); ++i)
    EXPECT_LE(lib.devices()[i - 1].capacity().clbs,
              lib.devices()[i].capacity().clbs);
}

TEST(DeviceLibrary, ContainsPaperDevices) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  // The case-study device and the Fig. 7 x-axis endpoints.
  EXPECT_NO_THROW(lib.by_name("XC5VFX70T"));
  EXPECT_NO_THROW(lib.by_name("XC5VLX20T"));
  EXPECT_NO_THROW(lib.by_name("XC5VFX200T"));
  EXPECT_THROW(lib.by_name("XC7Z020"), DeviceError);
}

TEST(DeviceLibrary, IndexOfMatchesOrder) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  EXPECT_EQ(lib.index_of(lib.devices().front().name()), 0u);
  EXPECT_EQ(lib.index_of(lib.devices().back().name()),
            lib.devices().size() - 1);
  EXPECT_THROW(lib.index_of("nope"), DeviceError);
}

TEST(DeviceLibrary, SmallestFittingWalksUp) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const Device* tiny = lib.smallest_fitting({100, 1, 1});
  ASSERT_NE(tiny, nullptr);
  EXPECT_EQ(tiny->name(), lib.devices().front().name());

  const Device* none = lib.smallest_fitting({1000000, 0, 0});
  EXPECT_EQ(none, nullptr);

  // Something needing many DSPs should skip the LX devices.
  const Device* dsp_heavy = lib.smallest_fitting({100, 1, 150});
  ASSERT_NE(dsp_heavy, nullptr);
  EXPECT_GE(dsp_heavy->capacity().dsps, 150u);
}

TEST(DeviceLibrary, FullFamilyIsSortedAndSuperset) {
  const DeviceLibrary full = DeviceLibrary::virtex5_full();
  const DeviceLibrary subset = DeviceLibrary::virtex5();
  EXPECT_GT(full.devices().size(), subset.devices().size());
  for (std::size_t i = 1; i < full.devices().size(); ++i)
    EXPECT_LE(full.devices()[i - 1].capacity().clbs,
              full.devices()[i].capacity().clbs);
  // Every evaluation-subset device exists in the full family with the same
  // capacity.
  for (const Device& d : subset.devices()) {
    const Device& f = full.by_name(d.name());
    EXPECT_EQ(f.capacity(), d.capacity());
    EXPECT_EQ(f.rows(), d.rows());
  }
}

TEST(DeviceLibrary, FullFamilyNamesAreUnique) {
  const DeviceLibrary full = DeviceLibrary::virtex5_full();
  for (std::size_t i = 0; i < full.devices().size(); ++i)
    EXPECT_EQ(full.index_of(full.devices()[i].name()), i);
}

TEST(DeviceLibrary, FullFamilyColumnsCoverCapacity) {
  const DeviceLibrary full = DeviceLibrary::virtex5_full();
  for (const Device& d : full.devices()) {
    EXPECT_GE(d.column_count(BlockType::Clb) * arch::kClbsPerTile * d.rows(),
              d.capacity().clbs)
        << d.name();
    EXPECT_GE(d.column_count(BlockType::Bram) * arch::kBramsPerTile * d.rows(),
              d.capacity().brams)
        << d.name();
    EXPECT_GE(d.column_count(BlockType::Dsp) * arch::kDspsPerTile * d.rows(),
              d.capacity().dsps)
        << d.name();
  }
}

TEST(DeviceLibrary, FX70THoldsCaseStudyBudget) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const Device& fx70t = lib.by_name("XC5VFX70T");
  // The paper reserves 6800 CLBs / 50 BRAMs / 150 DSPs of the FX70T for PR.
  // Our modelled FX70T must be able to reserve that. (DSP capacity is 128
  // in the base device model; the paper's 150 implies a -2 speed-grade
  // variant, so we check CLB/BRAM and most of the DSP budget.)
  EXPECT_GE(fx70t.capacity().clbs, 6800u);
  EXPECT_GE(fx70t.capacity().brams, 50u);
  EXPECT_GE(fx70t.capacity().dsps, 128u);
}

}  // namespace
}  // namespace prpart
