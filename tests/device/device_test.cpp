#include "device/device.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "device/tiles.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

TEST(Device, ColumnsCoverCapacity) {
  const Device d("test", {400, 16, 16}, 2);
  // Columns x rows must provide at least the declared capacity.
  EXPECT_GE(d.column_count(BlockType::Clb) * arch::kClbsPerTile * d.rows(),
            400u);
  EXPECT_GE(d.column_count(BlockType::Bram) * arch::kBramsPerTile * d.rows(),
            16u);
  EXPECT_GE(d.column_count(BlockType::Dsp) * arch::kDspsPerTile * d.rows(),
            16u);
}

TEST(Device, SpecialColumnsAreInterleaved) {
  const Device d("test", {2000, 40, 40}, 2);
  // No special column should sit at the very start when CLB columns exist,
  // and consecutive specials should be separated by CLB columns somewhere.
  const auto& cols = d.columns();
  ASSERT_FALSE(cols.empty());
  EXPECT_EQ(cols.front(), BlockType::Clb);
  bool found_clb_after_special = false;
  for (std::size_t i = 1; i < cols.size(); ++i)
    if (cols[i - 1] != BlockType::Clb && cols[i] == BlockType::Clb)
      found_clb_after_special = true;
  EXPECT_TRUE(found_clb_after_special);
}

TEST(Device, TileResourcesMatchColumnType) {
  const Device d("test", {400, 8, 8}, 2);
  for (std::size_t c = 0; c < d.columns().size(); ++c) {
    const ResourceVec r = d.tile_resources(c);
    switch (d.columns()[c]) {
      case BlockType::Clb:
        EXPECT_EQ(r, ResourceVec(arch::kClbsPerTile, 0, 0));
        break;
      case BlockType::Bram:
        EXPECT_EQ(r, ResourceVec(0, arch::kBramsPerTile, 0));
        break;
      case BlockType::Dsp:
        EXPECT_EQ(r, ResourceVec(0, 0, arch::kDspsPerTile));
        break;
    }
  }
}

TEST(Device, InvalidConstruction) {
  EXPECT_THROW(Device("x", {100, 0, 0}, 0), InternalError);
  EXPECT_THROW(Device("x", {0, 10, 0}, 2), InternalError);
}

TEST(DeviceLibrary, Virtex5IsSortedAscending) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  ASSERT_GE(lib.devices().size(), 9u);
  for (std::size_t i = 1; i < lib.devices().size(); ++i)
    EXPECT_LE(lib.devices()[i - 1].capacity().clbs,
              lib.devices()[i].capacity().clbs);
}

TEST(DeviceLibrary, ContainsPaperDevices) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  // The case-study device and the Fig. 7 x-axis endpoints.
  EXPECT_NO_THROW(lib.by_name("XC5VFX70T"));
  EXPECT_NO_THROW(lib.by_name("XC5VLX20T"));
  EXPECT_NO_THROW(lib.by_name("XC5VFX200T"));
  EXPECT_THROW(lib.by_name("XC7Z020"), DeviceError);
}

TEST(DeviceLibrary, IndexOfMatchesOrder) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  EXPECT_EQ(lib.index_of(lib.devices().front().name()), 0u);
  EXPECT_EQ(lib.index_of(lib.devices().back().name()),
            lib.devices().size() - 1);
  EXPECT_THROW(lib.index_of("nope"), DeviceError);
}

TEST(DeviceLibrary, SmallestFittingWalksUp) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const Device* tiny = lib.smallest_fitting({100, 1, 1});
  ASSERT_NE(tiny, nullptr);
  EXPECT_EQ(tiny->name(), lib.devices().front().name());

  const Device* none = lib.smallest_fitting({1000000, 0, 0});
  EXPECT_EQ(none, nullptr);

  // Something needing many DSPs should skip the LX devices.
  const Device* dsp_heavy = lib.smallest_fitting({100, 1, 150});
  ASSERT_NE(dsp_heavy, nullptr);
  EXPECT_GE(dsp_heavy->capacity().dsps, 150u);
}

TEST(DeviceLibrary, FullFamilyIsSortedAndSuperset) {
  const DeviceLibrary full = DeviceLibrary::virtex5_full();
  const DeviceLibrary subset = DeviceLibrary::virtex5();
  EXPECT_GT(full.devices().size(), subset.devices().size());
  for (std::size_t i = 1; i < full.devices().size(); ++i)
    EXPECT_LE(full.devices()[i - 1].capacity().clbs,
              full.devices()[i].capacity().clbs);
  // Every evaluation-subset device exists in the full family with the same
  // capacity.
  for (const Device& d : subset.devices()) {
    const Device& f = full.by_name(d.name());
    EXPECT_EQ(f.capacity(), d.capacity());
    EXPECT_EQ(f.rows(), d.rows());
  }
}

TEST(DeviceLibrary, FullFamilyNamesAreUnique) {
  const DeviceLibrary full = DeviceLibrary::virtex5_full();
  for (std::size_t i = 0; i < full.devices().size(); ++i)
    EXPECT_EQ(full.index_of(full.devices()[i].name()), i);
}

TEST(DeviceLibrary, FullFamilyColumnsCoverCapacity) {
  const DeviceLibrary full = DeviceLibrary::virtex5_full();
  for (const Device& d : full.devices()) {
    EXPECT_GE(d.column_count(BlockType::Clb) * arch::kClbsPerTile * d.rows(),
              d.capacity().clbs)
        << d.name();
    EXPECT_GE(d.column_count(BlockType::Bram) * arch::kBramsPerTile * d.rows(),
              d.capacity().brams)
        << d.name();
    EXPECT_GE(d.column_count(BlockType::Dsp) * arch::kDspsPerTile * d.rows(),
              d.capacity().dsps)
        << d.name();
  }
}

TEST(DeviceLibrary, ReferencePartsGoldenLayouts) {
  const DeviceLibrary ref = DeviceLibrary::reference_parts();
  ASSERT_EQ(ref.devices().size(), 3u);

  // Edge part: all BRAM on the left die edge, all DSP on the right.
  const Device& edge = ref.by_name("XC7A35T");
  EXPECT_EQ(edge.rows(), 3u);
  ASSERT_EQ(edge.columns().size(), 16u);
  EXPECT_EQ(edge.columns()[0], BlockType::Bram);
  EXPECT_EQ(edge.columns()[1], BlockType::Bram);
  EXPECT_EQ(edge.columns()[14], BlockType::Dsp);
  EXPECT_EQ(edge.columns()[15], BlockType::Dsp);
  EXPECT_EQ(edge.capacity(), ResourceVec(720, 24, 48));

  // Zynq-like part: every BRAM column is immediately followed by a DSP
  // column (the 7-series back-to-back pairing).
  const Device& zynq = ref.by_name("XC7Z020");
  EXPECT_EQ(zynq.rows(), 5u);
  ASSERT_EQ(zynq.columns().size(), 50u);
  for (std::size_t c = 0; c < zynq.columns().size(); ++c) {
    if (zynq.columns()[c] != BlockType::Bram) continue;
    ASSERT_LT(c + 1, zynq.columns().size());
    EXPECT_EQ(zynq.columns()[c + 1], BlockType::Dsp);
  }
  EXPECT_EQ(zynq.capacity(), ResourceVec(4000, 100, 200));

  // Virtex-7-like part: widest uninterrupted CLB span is 16 columns.
  const Device& v7 = ref.by_name("XC7V585T");
  EXPECT_EQ(v7.rows(), 14u);
  ASSERT_EQ(v7.columns().size(), 72u);
  std::uint32_t widest = 0;
  std::uint32_t run = 0;
  for (BlockType t : v7.columns()) {
    run = t == BlockType::Clb ? run + 1 : 0;
    widest = std::max(widest, run);
  }
  EXPECT_EQ(widest, 16u);
  EXPECT_EQ(v7.capacity(), ResourceVec(17920, 224, 448));

  // Sorted smallest to largest, like every other library.
  for (std::size_t i = 1; i < ref.devices().size(); ++i)
    EXPECT_LT(ref.devices()[i - 1].capacity().clbs,
              ref.devices()[i].capacity().clbs);
}

TEST(DeviceLibrary, ReferencePartsTileGoldens) {
  const DeviceLibrary ref = DeviceLibrary::reference_parts();
  const Device& zynq = ref.by_name("XC7Z020");
  EXPECT_EQ(zynq.tiles_of(BlockType::Clb), 40u * 5);
  EXPECT_EQ(zynq.tiles_of(BlockType::Bram), 5u * 5);
  EXPECT_EQ(zynq.tiles_of(BlockType::Dsp), 5u * 5);

  // Eq. 3-5 rounding against the Zynq-like capacity: consuming the whole
  // part as one region costs the full column grid in tiles and frames.
  const TileCount whole = tiles_for(zynq.capacity());
  EXPECT_EQ(whole.clb_tiles, 200u);
  EXPECT_EQ(whole.bram_tiles, 25u);
  EXPECT_EQ(whole.dsp_tiles, 25u);
  EXPECT_EQ(whole.frames(), 200u * 36 + 25u * 30 + 25u * 28);

  const Device& edge = ref.by_name("XC7A35T");
  EXPECT_EQ(edge.tiles_of(BlockType::Clb), 36u);
  EXPECT_EQ(edge.tiles_of(BlockType::Bram), 6u);
  EXPECT_EQ(edge.tiles_of(BlockType::Dsp), 6u);
}

TEST(DeviceLibrary, ExtendedIsVirtex5PlusReferenceParts) {
  const DeviceLibrary ext = DeviceLibrary::extended();
  const DeviceLibrary v5 = DeviceLibrary::virtex5();
  const DeviceLibrary ref = DeviceLibrary::reference_parts();
  ASSERT_EQ(ext.devices().size(), v5.devices().size() + ref.devices().size());
  // The Virtex-5 prefix keeps its order, so auto-device walks are unchanged
  // for designs that fit any Virtex-5 part.
  for (std::size_t i = 0; i < v5.devices().size(); ++i)
    EXPECT_EQ(ext.devices()[i].name(), v5.devices()[i].name());
  for (std::size_t i = 0; i < ref.devices().size(); ++i)
    EXPECT_EQ(ext.devices()[v5.devices().size() + i].name(),
              ref.devices()[i].name());
  EXPECT_NO_THROW(ext.by_name("XC7Z020"));
  EXPECT_NO_THROW(ext.by_name("XC5VFX70T"));
  // Names stay unique across the merged catalogue.
  for (std::size_t i = 0; i < ext.devices().size(); ++i)
    EXPECT_EQ(ext.index_of(ext.devices()[i].name()), i);
}

TEST(DeviceLibrary, FX70THoldsCaseStudyBudget) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const Device& fx70t = lib.by_name("XC5VFX70T");
  // The paper reserves 6800 CLBs / 50 BRAMs / 150 DSPs of the FX70T for PR.
  // Our modelled FX70T must be able to reserve that. (DSP capacity is 128
  // in the base device model; the paper's 150 implies a -2 speed-grade
  // variant, so we check CLB/BRAM and most of the DSP budget.)
  EXPECT_GE(fx70t.capacity().clbs, 6800u);
  EXPECT_GE(fx70t.capacity().brams, 50u);
  EXPECT_GE(fx70t.capacity().dsps, 128u);
}

}  // namespace
}  // namespace prpart
