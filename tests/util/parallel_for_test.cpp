#include "util/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace prpart {
namespace {

TEST(ParallelFor, ExecutesEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    parallel_for(100, threads, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
  }
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto compute = [](unsigned threads) {
    std::vector<std::uint64_t> out(200);
    parallel_for(out.size(), threads, [&](std::size_t i) {
      std::uint64_t v = i + 1;
      for (int k = 0; k < 50; ++k) v = v * 6364136223846793005ull + 1;
      out[i] = v;
    });
    return out;
  };
  const auto serial = compute(1);
  EXPECT_EQ(compute(2), serial);
  EXPECT_EQ(compute(7), serial);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool ran = false;
  parallel_for(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(5);
  parallel_for(ids.size(), 1,
               [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(50, 4,
                   [&](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionStopsFurtherWork) {
  std::atomic<int> executed{0};
  try {
    parallel_for(1000000, 2, [&](std::size_t i) {
      ++executed;
      if (i == 0) throw std::runtime_error("early");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // Workers bail out quickly; far fewer than all iterations ran.
  EXPECT_LT(executed.load(), 1000000);
}

TEST(ParallelFor, NestedCallsRunInlineOnWorkers) {
  // A parallel_for issued from inside a worker body must not spawn another
  // layer of threads: the inner loop runs inline on the worker, every index
  // still executes exactly once, and inside_parallel_for() reports the
  // nesting to the inner call.
  std::vector<std::atomic<int>> inner_hits(64);
  for (auto& h : inner_hits) h = 0;
  std::atomic<int> nested_inline{0};
  parallel_for(8, 4, [&](std::size_t outer) {
    EXPECT_TRUE(inside_parallel_for());
    const auto worker = std::this_thread::get_id();
    parallel_for(8, 4, [&](std::size_t inner) {
      if (std::this_thread::get_id() == worker) ++nested_inline;
      ++inner_hits[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < inner_hits.size(); ++i)
    EXPECT_EQ(inner_hits[i].load(), 1) << "index " << i;
  // Every nested iteration stayed on its outer worker thread.
  EXPECT_EQ(nested_inline.load(), 64);
  // Outside any parallel_for the guard reads false again.
  EXPECT_FALSE(inside_parallel_for());
}

TEST(ParallelFor, DefaultThreadCountRespectsEnv) {
  setenv("PRPART_TEST_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count("PRPART_TEST_THREADS"), 3u);
  setenv("PRPART_TEST_THREADS", "0", 1);
  EXPECT_EQ(default_thread_count("PRPART_TEST_THREADS"), 1u);
  unsetenv("PRPART_TEST_THREADS");
  EXPECT_GE(default_thread_count("PRPART_TEST_THREADS"), 1u);
}

// --- WorkerPool (persistent threads, §4e) ----------------------------------

TEST(WorkerPool, ExecutesEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    WorkerPool pool(threads);
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    pool.run(100, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
  }
}

TEST(WorkerPool, ReusesThreadsAcrossRuns) {
  // The steady-state contract: back-to-back runs never spawn a thread, and
  // every run still executes each index exactly once.
  WorkerPool pool(4);
  const std::uint64_t spawned = pool.threads_spawned();
  EXPECT_EQ(spawned, 3u);  // the caller is the fourth worker
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<int>> hits(37);
    for (auto& h : hits) h = 0;
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    EXPECT_EQ(pool.threads_spawned(), spawned) << "round " << round;
  }
}

TEST(WorkerPool, ResultsMatchParallelFor) {
  auto fill = [](std::vector<std::uint64_t>& out, std::size_t i) {
    std::uint64_t v = i + 1;
    for (int k = 0; k < 50; ++k) v = v * 6364136223846793005ull + 1;
    out[i] = v;
  };
  std::vector<std::uint64_t> serial(200);
  parallel_for(serial.size(), 1, [&](std::size_t i) { fill(serial, i); });
  WorkerPool pool(5);
  std::vector<std::uint64_t> pooled(200);
  pool.run(pooled.size(), [&](std::size_t i) { fill(pooled, i); });
  EXPECT_EQ(pooled, serial);
}

TEST(WorkerPool, PropagatesFirstExceptionAndStaysUsable) {
  WorkerPool pool(4);
  EXPECT_THROW(pool.run(50,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // A failed run drains cleanly: the next run works and hits every index.
  std::vector<std::atomic<int>> hits(50);
  for (auto& h : hits) h = 0;
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkerPool, NestedRunsExecuteInline) {
  // A run() (or parallel_for) issued from inside a pool body must run
  // inline on that worker — same composition rule as nested parallel_for.
  WorkerPool pool(4);
  std::vector<std::atomic<int>> inner_hits(64);
  for (auto& h : inner_hits) h = 0;
  std::atomic<int> nested_inline{0};
  pool.run(8, [&](std::size_t outer) {
    EXPECT_TRUE(inside_parallel_for());
    const auto worker = std::this_thread::get_id();
    pool.run(8, [&](std::size_t inner) {
      if (std::this_thread::get_id() == worker) ++nested_inline;
      ++inner_hits[outer * 8 + inner];
    });
  });
  for (std::size_t i = 0; i < inner_hits.size(); ++i)
    EXPECT_EQ(inner_hits[i].load(), 1) << "index " << i;
  EXPECT_EQ(nested_inline.load(), 64);
  EXPECT_FALSE(inside_parallel_for());
}

TEST(WorkerPool, SingleThreadPoolRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.threads_spawned(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(5);
  pool.run(ids.size(),
           [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(WorkerPool, PooledParallelForOverloadRoutesThroughPool) {
  WorkerPool pool(3);
  std::atomic<int> off_caller{0};
  const auto caller = std::this_thread::get_id();
  parallel_for(&pool, 64, 3, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) ++off_caller;
  });
  EXPECT_EQ(pool.threads_spawned(), 2u);
  // With no pool the overload behaves exactly like the spawning form.
  std::vector<std::atomic<int>> hits(16);
  for (auto& h : hits) h = 0;
  parallel_for(nullptr, hits.size(), 2, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

}  // namespace
}  // namespace prpart
