#include "util/args.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart {
namespace {

TEST(Args, SeparatesPositionalsAndOptions) {
  const Args a({"partition", "design.xml", "--device", "XC5VFX70T"}, {});
  EXPECT_EQ(a.positionals(),
            (std::vector<std::string>{"partition", "design.xml"}));
  EXPECT_EQ(a.value("device"), "XC5VFX70T");
  EXPECT_TRUE(a.has("device"));
  EXPECT_FALSE(a.has("budget"));
}

TEST(Args, SwitchesTakeNoValue) {
  const Args a({"partition", "--floorplan", "design.xml"}, {"floorplan"});
  EXPECT_TRUE(a.has("floorplan"));
  EXPECT_EQ(a.positionals().size(), 2u);
  EXPECT_EQ(a.positionals()[1], "design.xml");
}

TEST(Args, ValueOrAndU64Or) {
  const Args a({"--steps", "500"}, {});
  EXPECT_EQ(a.u64_or("steps", 10), 500u);
  EXPECT_EQ(a.u64_or("seed", 10), 10u);
  EXPECT_EQ(a.value_or("class", "logic"), "logic");
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(Args({"--device"}, {}), ParseError);
}

TEST(Args, StrayDashesThrow) {
  EXPECT_THROW(Args({"--"}, {}), ParseError);
}

TEST(Args, CheckKnownRejectsTypos) {
  const Args a({"--devcie", "X"}, {});
  EXPECT_THROW(a.check_known({"device"}), ParseError);
  const Args b({"--device", "X"}, {});
  EXPECT_NO_THROW(b.check_known({"device"}));
}

TEST(Args, NonNumericU64Throws) {
  const Args a({"--steps", "abc"}, {});
  EXPECT_THROW(a.u64_or("steps", 1), ParseError);
}

}  // namespace
}  // namespace prpart
