#include "util/lock_order.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_annotations.hpp"

namespace prpart {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

std::vector<std::string>& reports() {
  static std::vector<std::string> r;
  return r;
}

void record_report(const std::string& report) { reports().push_back(report); }

/// Forces validation on (release builds default it off) and swaps in a
/// recording handler so violations become assertions instead of aborts.
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = lock_order::enabled();
    lock_order::set_enabled(true);
    previous_ = lock_order::set_violation_handler(&record_report);
    reports().clear();
  }

  void TearDown() override {
    lock_order::set_violation_handler(previous_);
    lock_order::set_enabled(was_enabled_);
    reports().clear();
  }

 private:
  bool was_enabled_ = false;
  lock_order::ViolationHandler previous_ = nullptr;
};

TEST_F(LockOrderTest, StrictlyIncreasingLevelsAreClean) {
  Mutex outer(lock_order::Level::kServerLifecycle, "test.lifecycle");
  Mutex middle(lock_order::Level::kServerQueue, "test.queue");
  Mutex leaf(lock_order::Level::kServerLog, "test.log");
  {
    const MutexLock a(outer);
    const MutexLock b(middle);
    const MutexLock c(leaf);
  }
  EXPECT_TRUE(reports().empty()) << reports().front();
}

// The validator-triggering tests below physically acquire std::mutexes in
// inverted order, which TSan's own deadlock detector (correctly) also
// reports — under TSan they are skipped and the validator's logic is
// covered by the API-level tests plus the other three CI legs.
#define PRPART_SKIP_IF_TSAN()                                              \
  do {                                                                     \
    if (kUnderTsan)                                                        \
      GTEST_SKIP() << "TSan's deadlock detector flags the deliberate "     \
                      "inversion first";                                   \
  } while (false)

TEST_F(LockOrderTest, StatsUnderQueueLockIsAnInversion) {
  PRPART_SKIP_IF_TSAN();
  // The regression shape behind the admit_job fix: ServerStats sits below
  // the scheduler's queue mutex, so folding a counter while holding the
  // queue lock must be flagged — this is exactly what the pre-fix
  // Server::admit_job did on every accepted and rejected job.
  Mutex queue(lock_order::Level::kServerQueue, "test.queue");
  Mutex stats(lock_order::Level::kServerStats, "test.stats");
  {
    const MutexLock q(queue);
    const MutexLock s(stats);
  }
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("test.stats"), std::string::npos) << reports()[0];
  EXPECT_NE(reports()[0].find("test.queue"), std::string::npos) << reports()[0];
  EXPECT_NE(reports()[0].find("this thread holds"), std::string::npos);
}

TEST_F(LockOrderTest, SameLevelNestingIsReported) {
  PRPART_SKIP_IF_TSAN();
  // Two cost-cache shards at once would deadlock against a thread taking
  // them in the opposite order; same-level nesting is therefore illegal.
  Mutex a(lock_order::Level::kCostCacheShard, "test.shard-a");
  Mutex b(lock_order::Level::kCostCacheShard, "test.shard-b");
  {
    const MutexLock la(a);
    const MutexLock lb(b);
  }
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("test.shard-a"), std::string::npos);
  EXPECT_NE(reports()[0].find("test.shard-b"), std::string::npos);
}

TEST_F(LockOrderTest, SequentialSameLevelIsClean) {
  // One shard at a time (GroupCostCache::size()'s pattern) is fine.
  Mutex a(lock_order::Level::kCostCacheShard, "test.shard-a");
  Mutex b(lock_order::Level::kCostCacheShard, "test.shard-b");
  {
    const MutexLock la(a);
  }
  {
    const MutexLock lb(b);
  }
  EXPECT_TRUE(reports().empty()) << reports().front();
}

TEST_F(LockOrderTest, RecursiveAcquisitionIsReported) {
  // Driven through the validator API directly: actually re-locking a
  // std::mutex would deadlock before the assertion ran.
  int tag = 0;
  lock_order::on_acquire(&tag, 80, "test.recursive");
  lock_order::on_acquire(&tag, 80, "test.recursive");
  EXPECT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("recursively"), std::string::npos);
  lock_order::on_release(&tag);
  lock_order::on_release(&tag);
}

TEST_F(LockOrderTest, ApiLevelInversionIsReported) {
  // Same check as StatsUnderQueueLockIsAnInversion but through the raw
  // validator API (no std::mutex is locked), so it runs under TSan too.
  int queue_tag = 0;
  int stats_tag = 0;
  lock_order::on_acquire(&queue_tag, 80, "test.queue");
  lock_order::on_acquire(&stats_tag, 30, "test.stats");
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("test.stats"), std::string::npos);
  lock_order::on_release(&stats_tag);
  lock_order::on_release(&queue_tag);
}

TEST_F(LockOrderTest, ReportShowsBothOrdersViaWitness) {
  PRPART_SKIP_IF_TSAN();
  // lockdep-style A->B / B->A: the second thread's report should cite the
  // first order from the witness table, not just the current stack.
  Mutex a(lock_order::Level::kServerStats, "test.a");
  Mutex b(lock_order::Level::kServerQueue, "test.b");
  {
    const MutexLock la(a);
    const MutexLock lb(b);  // legal: 30 -> 80, records witness for b
  }
  EXPECT_TRUE(reports().empty());
  {
    const MutexLock lb(b);
    const MutexLock la(a);  // inversion: 30 under 80
  }
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("test.b was previously acquired while holding"),
            std::string::npos)
      << reports()[0];
}

TEST_F(LockOrderTest, MidScopeUnlockRelockIsTracked) {
  // The logger's drop-the-lock-around-slow-work pattern: after unlock(),
  // lower-level work is legal again; relock re-checks the hierarchy.
  Mutex outer(lock_order::Level::kServerLifecycle, "test.lifecycle");
  Mutex inner(lock_order::Level::kServerStats, "test.stats");
  MutexLock lock(outer);
  lock.unlock();
  {
    const MutexLock stats(inner);
  }
  lock.lock();
  EXPECT_TRUE(reports().empty()) << reports().front();
}

TEST_F(LockOrderTest, DisabledValidatorIsSilent) {
  PRPART_SKIP_IF_TSAN();
  lock_order::set_enabled(false);
  Mutex queue(lock_order::Level::kServerQueue, "test.queue");
  Mutex stats(lock_order::Level::kServerStats, "test.stats");
  {
    const MutexLock q(queue);
    const MutexLock s(stats);
  }
  EXPECT_TRUE(reports().empty());
}

TEST_F(LockOrderTest, HeldDescriptionListsAcquisitionOrder) {
  Mutex outer(lock_order::Level::kServerLifecycle, "test.lifecycle");
  Mutex inner(lock_order::Level::kServerQueue, "test.queue");
  const MutexLock a(outer);
  const MutexLock b(inner);
  const std::string held = lock_order::held_description();
  const auto outer_at = held.find("test.lifecycle");
  const auto inner_at = held.find("test.queue");
  ASSERT_NE(outer_at, std::string::npos) << held;
  ASSERT_NE(inner_at, std::string::npos) << held;
  EXPECT_LT(outer_at, inner_at) << held;
}

TEST_F(LockOrderTest, ServePathLadderIsClean) {
  // The full reactor-mode descent: connection registry, admission queue,
  // stats, RAM cache, disk index, job queue, completion outbox. Every
  // cross-layer path in the serve stack is a sub-chain of this ladder.
  Mutex conns(lock_order::Level::kReactorConns, "test.reactor.conns");
  Mutex admission(lock_order::Level::kServerAdmission, "test.admission");
  Mutex stats(lock_order::Level::kServerStats, "test.stats");
  Mutex cache(lock_order::Level::kResultCache, "test.cache");
  Mutex disk(lock_order::Level::kDiskStoreIndex, "test.disk");
  Mutex queue(lock_order::Level::kServerQueue, "test.queue");
  Mutex outbox(lock_order::Level::kReactorOutbox, "test.outbox");
  {
    const MutexLock a(conns);
    const MutexLock b(admission);
    const MutexLock c(stats);
    const MutexLock d(cache);
    const MutexLock e(disk);
    const MutexLock f(queue);
    const MutexLock g(outbox);
  }
  EXPECT_TRUE(reports().empty()) << reports().front();
}

TEST_F(LockOrderTest, SpillFromCacheToDiskIsLegal) {
  // ResultCache evicts to the DiskStore sink while holding the cache
  // mutex; the disk index sits directly below it for exactly this nest.
  Mutex cache(lock_order::Level::kResultCache, "test.cache");
  Mutex disk(lock_order::Level::kDiskStoreIndex, "test.disk");
  {
    const MutexLock c(cache);
    const MutexLock d(disk);
  }
  EXPECT_TRUE(reports().empty()) << reports().front();
}

TEST_F(LockOrderTest, CacheUnderDiskIndexIsAnInversion) {
  // The reverse of the spill path — a disk-hit promoting into the RAM
  // cache must not run under the disk index lock. API-level so it also
  // runs under TSan.
  int disk_tag = 0;
  int cache_tag = 0;
  lock_order::on_acquire(&disk_tag, 42, "test.disk");
  lock_order::on_acquire(&cache_tag, 40, "test.cache");
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("test.cache"), std::string::npos) << reports()[0];
  lock_order::on_release(&cache_tag);
  lock_order::on_release(&disk_tag);
}

TEST_F(LockOrderTest, ConnRegistryUnderOutboxIsAnInversion) {
  // Reactor::drain_posts must swap the outbox out and *release* it before
  // touching the connection registry; holding both would invert 85 -> 22.
  int outbox_tag = 0;
  int conns_tag = 0;
  lock_order::on_acquire(&outbox_tag, 85, "test.outbox");
  lock_order::on_acquire(&conns_tag, 22, "test.reactor.conns");
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("test.reactor.conns"), std::string::npos)
      << reports()[0];
  lock_order::on_release(&conns_tag);
  lock_order::on_release(&outbox_tag);
}

TEST_F(LockOrderTest, RouterLocksAreSequentialNotNested) {
  // The router's client registry and per-connection write serialiser share
  // one level: a relay holds only the write mutex, the acceptor only the
  // registry. Sequential use is clean; nesting them is flagged.
  Mutex registry(lock_order::Level::kShardRouter, "test.router.clients");
  Mutex writer(lock_order::Level::kShardRouter, "test.router.write");
  {
    const MutexLock r(registry);
  }
  {
    const MutexLock w(writer);
  }
  EXPECT_TRUE(reports().empty()) << reports().front();
  int registry_tag = 0;
  int writer_tag = 0;
  lock_order::on_acquire(&registry_tag, 26, "test.router.clients");
  lock_order::on_acquire(&writer_tag, 26, "test.router.write");
  ASSERT_EQ(reports().size(), 1u);
  EXPECT_NE(reports()[0].find("test.router.write"), std::string::npos)
      << reports()[0];
  lock_order::on_release(&writer_tag);
  lock_order::on_release(&registry_tag);
}

TEST_F(LockOrderTest, AdmissionWalksFullLadderLegally) {
  // An admission worker pops a line (24), folds stats (30), probes the
  // store (40 spilling to 42) and finally queues the job (80) — each step
  // after dropping the previous lock, but the nested worst case must also
  // be legal because handle_request holds admission state nowhere lower.
  Mutex admission(lock_order::Level::kServerAdmission, "test.admission");
  Mutex queue(lock_order::Level::kServerQueue, "test.queue");
  {
    const MutexLock a(admission);
    const MutexLock q(queue);
  }
  EXPECT_TRUE(reports().empty()) << reports().front();
}

using LockOrderDeathTest = LockOrderTest;

TEST_F(LockOrderDeathTest, DefaultHandlerAborts) {
  if (kUnderTsan) GTEST_SKIP() << "death tests are unreliable under TSan";
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // Restore the aborting default inside the death-test child only.
  EXPECT_DEATH(
      {
        lock_order::set_violation_handler(nullptr);
        lock_order::set_enabled(true);
        Mutex queue(lock_order::Level::kServerQueue, "test.queue");
        Mutex stats(lock_order::Level::kServerStats, "test.stats");
        const MutexLock q(queue);
        const MutexLock s(stats);
      },
      "lock-order violation");
}

}  // namespace
}  // namespace prpart
