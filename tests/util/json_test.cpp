#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart::json {
namespace {

TEST(JsonTest, DumpScalars) {
  EXPECT_EQ(Value().dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(std::uint64_t{42}).dump(), "42");
  EXPECT_EQ(Value(std::int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Value v = Value::object();
  v.set("zebra", Value(std::uint64_t{1}));
  v.set("alpha", Value(std::uint64_t{2}));
  v.set("mid", Value(std::uint64_t{3}));
  EXPECT_EQ(v.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(JsonTest, SetReplacesInPlace) {
  Value v = Value::object();
  v.set("a", Value(std::uint64_t{1}));
  v.set("b", Value(std::uint64_t{2}));
  v.set("a", Value(std::uint64_t{9}));
  EXPECT_EQ(v.dump(), "{\"a\":9,\"b\":2}");
}

TEST(JsonTest, ParseRoundTripsCompositeDocument) {
  const std::string text =
      "{\"name\":\"x\",\"ok\":true,\"n\":12,\"neg\":-3,\"f\":1.5,"
      "\"arr\":[1,2,[3]],\"obj\":{\"inner\":null}}";
  const Value v = parse(text);
  EXPECT_EQ(v.dump(), text);
  EXPECT_EQ(parse(v.dump()), v);
}

TEST(JsonTest, NumberTypes) {
  EXPECT_EQ(parse("7").type(), Value::Type::Uint);
  EXPECT_EQ(parse("-7").type(), Value::Type::Int);
  EXPECT_EQ(parse("7.5").type(), Value::Type::Double);
  EXPECT_EQ(parse("7e2").type(), Value::Type::Double);
  EXPECT_EQ(parse("18446744073709551615").as_u64(), UINT64_MAX);
}

TEST(JsonTest, StringEscapes) {
  const Value v = parse("\"a\\n\\t\\\"\\\\b\\u0041\"");
  EXPECT_EQ(v.as_string(), "a\n\t\"\\bA");
}

TEST(JsonTest, SurrogatePairDecodesToUtf8) {
  // U+1F600 as a surrogate pair.
  const Value v = parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, EscapeControlCharacters) {
  EXPECT_EQ(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(escape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonTest, RejectsTrailingGarbage) {
  EXPECT_THROW(parse("{} x"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\"}"), ParseError);
  EXPECT_THROW(parse("\"\\q\""), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_THROW(parse(deep), ParseError);
}

TEST(JsonTest, TypedAccessorsThrowOnMismatch) {
  EXPECT_THROW(parse("7").as_string(), ParseError);
  EXPECT_THROW(parse("\"x\"").as_u64(), ParseError);
  EXPECT_THROW(parse("[]").members(), ParseError);
}

TEST(JsonTest, ObjectLookup) {
  const Value v = parse("{\"a\":1}");
  EXPECT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.at("a").as_u64(), 1u);
  EXPECT_THROW(v.at("missing"), ParseError);
}

TEST(JsonTest, EqualValuesDumpIdenticalBytes) {
  // The property the content-addressed cache rests on.
  const Value a = parse("{\"k\":[1,2,{\"n\":null}]}");
  const Value b = parse("{\"k\":[1,2,{\"n\":null}]}");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.dump(), b.dump());
}

}  // namespace
}  // namespace prpart::json
