#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/status.hpp"

namespace prpart {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(6, 5), InternalError);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(3);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 1000; ++i) seen[rng.below(8)] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), InternalError);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsPlausible) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(17);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, ChanceFrequencyTracksP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

}  // namespace
}  // namespace prpart
