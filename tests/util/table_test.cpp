#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, ColumnsAlign) {
  TextTable t({"A", "B"});
  t.add_row({"long-cell", "x"});
  const std::string out = t.render();
  // Every rendered line has the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
}

TEST(TextTable, WrongArityThrows) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), InternalError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InternalError);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), InternalError);
}

TEST(TextTable, RuleInsertsSeparator) {
  TextTable t({"A"});
  t.add_row({"x"});
  t.add_rule();
  t.add_row({"y"});
  const std::string out = t.render();
  // 5 rules total: top, under header, mid, and bottom... count '+' corners.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, RowsCount) {
  TextTable t({"A"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace prpart
