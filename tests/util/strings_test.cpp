#include "util/strings.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("\t\n hi \r"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, Split) {
  const std::vector<std::string> expected = {"a", "b", "c"};
  EXPECT_EQ(split("a,b,c", ','), expected);
  EXPECT_EQ(split(" a , b , c ", ','), expected);
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "c"}));
  EXPECT_TRUE(split("", ',').empty());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_FALSE(starts_with("hello", "el"));
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("12345"), 12345u);
  EXPECT_EQ(parse_u64("  42 "), 42u);
  EXPECT_THROW(parse_u64(""), ParseError);
  EXPECT_THROW(parse_u64("abc"), ParseError);
  EXPECT_THROW(parse_u64("12x"), ParseError);
  EXPECT_THROW(parse_u64("-5"), ParseError);
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(244872), "244,872");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Strings, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(3.0, 0), "3");
  EXPECT_EQ(fixed(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace prpart
