#include "util/socket.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace prpart {
namespace {

TEST(SocketTest, BindEphemeralPortReportsIt) {
  TcpListener listener = TcpListener::bind(0);
  EXPECT_TRUE(listener.valid());
  EXPECT_NE(listener.port(), 0);
}

TEST(SocketTest, AcceptTimesOutWithoutClient) {
  TcpListener listener = TcpListener::bind(0);
  EXPECT_FALSE(listener.accept(10).has_value());
}

TEST(SocketTest, ConnectToClosedPortThrows) {
  std::uint16_t dead_port;
  {
    TcpListener listener = TcpListener::bind(0);
    dead_port = listener.port();
  }
  EXPECT_THROW(TcpStream::connect("127.0.0.1", dead_port), SocketError);
}

TEST(SocketTest, LineRoundTrip) {
  TcpListener listener = TcpListener::bind(0);
  std::thread echo([&] {
    std::optional<TcpStream> peer = listener.accept(2000);
    ASSERT_TRUE(peer.has_value());
    while (std::optional<std::string> line = peer->read_line())
      peer->write_all("echo:" + *line + "\n");
  });
  {
    TcpStream client = TcpStream::connect("localhost", listener.port());
    // Two requests in one write: the reader must split on '\n'.
    client.write_all("first\nsecond\n");
    EXPECT_EQ(client.read_line(), "echo:first");
    EXPECT_EQ(client.read_line(), "echo:second");
    client.write_all("third\r\n");
    EXPECT_EQ(client.read_line(), "echo:third");
  }
  echo.join();
}

TEST(SocketTest, CleanEofReturnsNullopt) {
  TcpListener listener = TcpListener::bind(0);
  std::thread server([&] {
    std::optional<TcpStream> peer = listener.accept(2000);
    ASSERT_TRUE(peer.has_value());
    peer->write_all("bye\n");
  });
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  EXPECT_EQ(client.read_line(), "bye");
  EXPECT_FALSE(client.read_line().has_value());
  server.join();
}

TEST(SocketTest, UnterminatedTrailingDataIsFinalLine) {
  TcpListener listener = TcpListener::bind(0);
  std::thread server([&] {
    std::optional<TcpStream> peer = listener.accept(2000);
    ASSERT_TRUE(peer.has_value());
    peer->write_all("no newline");
  });
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  EXPECT_EQ(client.read_line(), "no newline");
  EXPECT_FALSE(client.read_line().has_value());
  server.join();
}

TEST(SocketTest, OverlongLineThrows) {
  TcpListener listener = TcpListener::bind(0);
  std::thread server([&] {
    std::optional<TcpStream> peer = listener.accept(2000);
    ASSERT_TRUE(peer.has_value());
    peer->write_all(std::string(128, 'x') + "\n");
  });
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  EXPECT_THROW(client.read_line(64), SocketError);
  server.join();
}

TEST(SocketTest, ShutdownReadUnblocksReader) {
  TcpListener listener = TcpListener::bind(0);
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  std::optional<TcpStream> peer = listener.accept(2000);
  ASSERT_TRUE(peer.has_value());
  std::thread reader([&] { EXPECT_FALSE(peer->read_line().has_value()); });
  // Give the reader a moment to block, then half-close its socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  peer->shutdown_read();
  reader.join();
}

}  // namespace
}  // namespace prpart
