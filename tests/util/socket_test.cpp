#include "util/socket.hpp"

#include <pthread.h>
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <utility>

namespace prpart {
namespace {

TEST(SocketTest, BindEphemeralPortReportsIt) {
  TcpListener listener = TcpListener::bind(0);
  EXPECT_TRUE(listener.valid());
  EXPECT_NE(listener.port(), 0);
}

TEST(SocketTest, AcceptTimesOutWithoutClient) {
  TcpListener listener = TcpListener::bind(0);
  EXPECT_FALSE(listener.accept(10).has_value());
}

TEST(SocketTest, ConnectToClosedPortThrows) {
  std::uint16_t dead_port;
  {
    TcpListener listener = TcpListener::bind(0);
    dead_port = listener.port();
  }
  EXPECT_THROW(TcpStream::connect("127.0.0.1", dead_port), SocketError);
}

TEST(SocketTest, LineRoundTrip) {
  TcpListener listener = TcpListener::bind(0);
  std::thread echo([&] {
    std::optional<TcpStream> peer = listener.accept(2000);
    ASSERT_TRUE(peer.has_value());
    while (std::optional<std::string> line = peer->read_line())
      peer->write_all("echo:" + *line + "\n");
  });
  {
    TcpStream client = TcpStream::connect("localhost", listener.port());
    // Two requests in one write: the reader must split on '\n'.
    client.write_all("first\nsecond\n");
    EXPECT_EQ(client.read_line(), "echo:first");
    EXPECT_EQ(client.read_line(), "echo:second");
    client.write_all("third\r\n");
    EXPECT_EQ(client.read_line(), "echo:third");
  }
  echo.join();
}

TEST(SocketTest, CleanEofReturnsNullopt) {
  TcpListener listener = TcpListener::bind(0);
  std::thread server([&] {
    std::optional<TcpStream> peer = listener.accept(2000);
    ASSERT_TRUE(peer.has_value());
    peer->write_all("bye\n");
  });
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  EXPECT_EQ(client.read_line(), "bye");
  EXPECT_FALSE(client.read_line().has_value());
  server.join();
}

TEST(SocketTest, UnterminatedTrailingDataIsFinalLine) {
  TcpListener listener = TcpListener::bind(0);
  std::thread server([&] {
    std::optional<TcpStream> peer = listener.accept(2000);
    ASSERT_TRUE(peer.has_value());
    peer->write_all("no newline");
  });
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  EXPECT_EQ(client.read_line(), "no newline");
  EXPECT_FALSE(client.read_line().has_value());
  server.join();
}

TEST(SocketTest, OverlongLineThrows) {
  TcpListener listener = TcpListener::bind(0);
  std::thread server([&] {
    std::optional<TcpStream> peer = listener.accept(2000);
    ASSERT_TRUE(peer.has_value());
    peer->write_all(std::string(128, 'x') + "\n");
  });
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  EXPECT_THROW(client.read_line(64), SocketError);
  server.join();
}

TEST(SocketTest, ShutdownReadUnblocksReader) {
  TcpListener listener = TcpListener::bind(0);
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  std::optional<TcpStream> peer = listener.accept(2000);
  ASSERT_TRUE(peer.has_value());
  std::thread reader([&] { EXPECT_FALSE(peer->read_line().has_value()); });
  // Give the reader a moment to block, then half-close its socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  peer->shutdown_read();
  reader.join();
}

// ---------------------------------------------------------------------------
// Non-blocking I/O edge cases: the reactor's building blocks, driven
// deterministically over a connected loopback pair.

/// A connected (client, server) stream pair on an ephemeral loopback port.
std::pair<TcpStream, TcpStream> stream_pair() {
  TcpListener listener = TcpListener::bind(0);
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  std::optional<TcpStream> server = listener.accept(2000);
  EXPECT_TRUE(server.has_value());
  return {std::move(client), std::move(*server)};
}

/// Shrinks a socket buffer so partial writes happen at test-sized payloads.
void shrink_buffer(int fd, int option) {
  const int size = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, option, &size, sizeof size), 0);
}

TEST(SocketTest, PartialWritesSurfaceWouldBlockAndResume) {
  auto [writer, reader] = stream_pair();
  shrink_buffer(writer.fd(), SO_SNDBUF);
  shrink_buffer(reader.fd(), SO_RCVBUF);
  writer.set_nonblocking(true);
  reader.set_nonblocking(true);

  // 64 KiB against ~8 KiB of kernel buffering: write_some must report short
  // counts and kWouldBlock, and every byte must still arrive in order once
  // the reader drains.
  std::string payload(1u << 16, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<char>('a' + i % 23);
  std::string received;
  std::size_t sent = 0;
  bool saw_would_block = false;
  bool saw_partial = false;
  char chunk[8192];
  while (received.size() < payload.size()) {
    if (sent < payload.size()) {
      const TcpStream::IoResult w =
          writer.write_some(payload.data() + sent, payload.size() - sent);
      if (w.status == TcpStream::IoStatus::kWouldBlock) {
        saw_would_block = true;
      } else {
        ASSERT_EQ(w.status, TcpStream::IoStatus::kOk);
        if (w.bytes < payload.size() - sent) saw_partial = true;
        sent += w.bytes;
      }
    }
    const TcpStream::IoResult r = reader.read_some(chunk, sizeof chunk);
    if (r.status == TcpStream::IoStatus::kOk)
      received.append(chunk, r.bytes);
    else
      ASSERT_EQ(r.status, TcpStream::IoStatus::kWouldBlock);
  }
  EXPECT_TRUE(saw_would_block);
  EXPECT_TRUE(saw_partial);
  EXPECT_EQ(received, payload);
}

TEST(SocketTest, ShortReadsReassembleFramesAcrossBoundaries) {
  auto [writer, reader] = stream_pair();
  reader.set_nonblocking(true);

  // Frames split mid-line across two writes, read back 3 bytes at a time:
  // exactly what the reactor's incremental framing has to reassemble.
  writer.write_all("first\nsec");
  writer.write_all("ond\nlast\n");
  const std::string expected = "first\nsecond\nlast\n";
  std::string received;
  char tiny[3];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (received.size() < expected.size() &&
         std::chrono::steady_clock::now() < deadline) {
    const TcpStream::IoResult r = reader.read_some(tiny, sizeof tiny);
    if (r.status == TcpStream::IoStatus::kOk) {
      received.append(tiny, r.bytes);
    } else {
      ASSERT_EQ(r.status, TcpStream::IoStatus::kWouldBlock);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(received, expected);
}

std::atomic<int> g_usr1_count{0};
void count_usr1(int) { g_usr1_count.fetch_add(1); }

TEST(SocketTest, WriteAllRetriesThroughSignalInterruptions) {
  // SA_RESTART deliberately off: a SIGUSR1 landing mid-send makes the
  // syscall fail with EINTR, which write_all/read_some must retry.
  struct sigaction sa = {};
  sa.sa_handler = count_usr1;
  sigemptyset(&sa.sa_mask);
  struct sigaction old = {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);
  g_usr1_count.store(0);

  auto [writer, reader] = stream_pair();
  shrink_buffer(writer.fd(), SO_SNDBUF);
  shrink_buffer(reader.fd(), SO_RCVBUF);
  const std::string payload(1u << 16, 'q');
  std::thread sender([&writer, &payload] { writer.write_all(payload); });

  // Bombard the blocked sender with signals while draining slowly.
  std::string received;
  char chunk[4096];
  while (received.size() < payload.size()) {
    pthread_kill(sender.native_handle(), SIGUSR1);
    const TcpStream::IoResult r = reader.read_some(chunk, sizeof chunk);
    ASSERT_EQ(r.status, TcpStream::IoStatus::kOk);  // blocking socket
    received.append(chunk, r.bytes);
  }
  sender.join();
  sigaction(SIGUSR1, &old, nullptr);
  EXPECT_EQ(received, payload);
  EXPECT_GT(g_usr1_count.load(), 0);
}

TEST(SocketTest, PeerResetSurfacesAsClosedNotError) {
  auto [client, server] = stream_pair();
  server.set_nonblocking(true);

  // SO_LINGER with zero timeout turns close() into an immediate RST.
  struct linger lg = {};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ASSERT_EQ(::setsockopt(client.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg),
            0);
  client.close();

  // The reset must surface as kClosed — an event-loop state change, never
  // a thrown SocketError — on both directions, within a bounded wait.
  const char byte = 'x';
  char sink[64];
  bool write_closed = false;
  bool read_closed = false;
  for (int i = 0; i < 2000 && !(write_closed && read_closed); ++i) {
    if (!write_closed) {
      const TcpStream::IoResult w = server.write_some(&byte, 1);
      write_closed = w.status == TcpStream::IoStatus::kClosed;
    }
    if (!read_closed) {
      const TcpStream::IoResult r = server.read_some(sink, sizeof sink);
      read_closed = r.status == TcpStream::IoStatus::kClosed;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(write_closed);
  EXPECT_TRUE(read_closed);
}

TEST(SocketTest, AcceptWaitParksUntilNotified) {
  TcpListener listener = TcpListener::bind(0);
  WakePipe wake;
  std::atomic<bool> returned{false};
  std::thread acceptor([&] {
    EXPECT_FALSE(listener.accept_wait(wake).has_value());
    returned.store(true);
  });
  // No client, no wake: the acceptor stays parked (no poll timeout).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load());
  wake.notify();
  acceptor.join();
  EXPECT_TRUE(returned.load());
}

TEST(SocketTest, AcceptWaitDeliversConnections) {
  TcpListener listener = TcpListener::bind(0);
  WakePipe wake;
  std::thread acceptor([&] {
    std::optional<TcpStream> peer = listener.accept_wait(wake);
    ASSERT_TRUE(peer.has_value());
    peer->write_all("hi\n");
  });
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  EXPECT_EQ(client.read_line(), "hi");
  acceptor.join();
}

TEST(SocketTest, NonblockingAcceptReturnsNulloptWhenIdle) {
  TcpListener listener = TcpListener::bind(0);
  listener.set_nonblocking(true);
  EXPECT_FALSE(listener.accept_nonblocking().has_value());
  TcpStream client = TcpStream::connect("127.0.0.1", listener.port());
  // The connection lands asynchronously; poll briefly.
  std::optional<TcpStream> peer;
  for (int i = 0; i < 2000 && !peer; ++i) {
    peer = listener.accept_nonblocking();
    if (!peer) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(peer.has_value());
}

}  // namespace
}  // namespace prpart
