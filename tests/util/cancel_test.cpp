#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "synth/ip_library.hpp"

namespace prpart {
namespace {

TEST(CancelTest, DefaultTokenIsLive) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(check_cancel(&token));
  EXPECT_NO_THROW(check_cancel(nullptr));
}

TEST(CancelTest, CancelFlagFires) {
  CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(check_cancel(&token), CancelledError);
}

TEST(CancelTest, PastDeadlineFires) {
  CancelToken token;
  token.set_deadline(monotonic_now_ns() - 1);
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTest, FutureDeadlineDoesNotFire) {
  CancelToken token;
  token.set_timeout_ms(60'000);
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTest, NonPositiveTimeoutDisarms) {
  CancelToken token;
  token.set_deadline(monotonic_now_ns() - 1);
  token.set_timeout_ms(0);
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTest, PreCancelledTokenAbortsSearch) {
  const Design design = synth::wireless_receiver_design();
  CancelToken token;
  token.cancel();
  PartitionerOptions options;
  options.search.max_move_evaluations = 500'000;
  options.search.cancel = &token;
  EXPECT_THROW(partition_design(design, {6800, 64, 150}, options),
               CancelledError);
}

TEST(CancelTest, NullTokenSearchCompletes) {
  const Design design = synth::wireless_receiver_design();
  PartitionerOptions options;
  options.search.max_move_evaluations = 300'000;
  const PartitionerResult r = partition_design(design, {6800, 64, 150}, options);
  EXPECT_TRUE(r.feasible);
}

TEST(CancelTest, MidSearchDeadlineAborts) {
  const Design design = synth::wireless_receiver_design();
  CancelToken token;
  token.set_timeout_ms(1);
  PartitionerOptions options;
  options.search.max_move_evaluations = 50'000'000;
  options.search.cancel = &token;
  EXPECT_THROW(partition_design(design, {6800, 64, 150}, options),
               CancelledError);
}

}  // namespace
}  // namespace prpart
