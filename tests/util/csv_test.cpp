#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/status.hpp"

namespace prpart {
namespace {

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.row({"1", "2"});
  csv.row({"3", "4"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriter, EscapesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out, {"x"});
  csv.row({"has,comma"});
  csv.row({"has\"quote"});
  csv.row({"has\nnewline"});
  EXPECT_EQ(out.str(),
            "x\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvWriter, WrongArityThrows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_THROW(csv.row({"1"}), InternalError);
}

TEST(CsvWriter, EmptyHeaderThrows) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), InternalError);
}

}  // namespace
}  // namespace prpart
