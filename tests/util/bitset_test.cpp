#include "util/bitset.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <unordered_set>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

TEST(DynBitset, StartsEmpty) {
  DynBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(DynBitset, SetResetTest) {
  DynBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynBitset, OutOfRangeThrows) {
  DynBitset b(10);
  EXPECT_THROW(b.set(10), InternalError);
  EXPECT_THROW(b.test(11), InternalError);
  EXPECT_THROW(b.reset(100), InternalError);
}

TEST(DynBitset, SizeMismatchThrows) {
  DynBitset a(10);
  DynBitset b(11);
  EXPECT_THROW(a.intersects(b), InternalError);
  EXPECT_THROW(a.is_subset_of(b), InternalError);
  EXPECT_THROW(a |= b, InternalError);
}

TEST(DynBitset, Intersects) {
  DynBitset a(130);
  DynBitset b(130);
  a.set(5);
  a.set(128);
  b.set(6);
  EXPECT_FALSE(a.intersects(b));
  b.set(128);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
}

TEST(DynBitset, SubsetRelation) {
  DynBitset a(80);
  DynBitset b(80);
  a.set(1);
  a.set(70);
  b.set(1);
  b.set(70);
  b.set(3);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  DynBitset empty(80);
  EXPECT_TRUE(empty.is_subset_of(a));
}

TEST(DynBitset, UnionIntersection) {
  DynBitset a(66);
  DynBitset b(66);
  a.set(0);
  a.set(65);
  b.set(1);
  b.set(65);
  const DynBitset u = a | b;
  EXPECT_EQ(u.count(), 3u);
  const DynBitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(65));
}

TEST(DynBitset, Subtract) {
  DynBitset a(66);
  DynBitset b(66);
  a.set(0);
  a.set(5);
  a.set(65);
  b.set(5);
  b.set(65);
  a.subtract(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.test(0));
}

TEST(DynBitset, BitsAreSortedAndComplete) {
  DynBitset b(200);
  const std::vector<std::size_t> expected = {0, 1, 63, 64, 127, 128, 199};
  for (std::size_t i : expected) b.set(i);
  EXPECT_EQ(b.bits(), expected);
}

TEST(DynBitset, EqualityAndOrdering) {
  DynBitset a(10);
  DynBitset b(10);
  EXPECT_EQ(a, b);
  a.set(3);
  EXPECT_NE(a, b);
  EXPECT_TRUE(b < a || a < b);
}

TEST(DynBitset, HashDistinguishesTypicalSets) {
  std::unordered_set<std::size_t> hashes;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    DynBitset b(64);
    for (int k = 0; k < 8; ++k) b.set(rng.below(64));
    hashes.insert(b.hash());
  }
  // Collisions are possible but should be rare for 500 random sets.
  EXPECT_GT(hashes.size(), 450u);
}

TEST(DynBitset, ToString) {
  DynBitset b(10);
  b.set(1);
  b.set(4);
  b.set(7);
  EXPECT_EQ(b.to_string(), "{1,4,7}");
  EXPECT_EQ(DynBitset(5).to_string(), "{}");
}

TEST(DynBitset, ZeroSizeIsValid) {
  DynBitset b(0);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
}

TEST(DynBitset, ForEachSetBitMatchesBits) {
  // Multi-word set with bits on word boundaries (63, 64) and in the
  // partially-used trailing word (150 of size 151).
  DynBitset b(151);
  for (std::size_t i : {0u, 1u, 62u, 63u, 64u, 65u, 127u, 128u, 150u}) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each_set_bit([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, b.bits());
  EXPECT_EQ(seen.size(), b.count());
}

TEST(DynBitset, ForEachSetBitOnEmptyAndDense) {
  DynBitset empty(200);
  std::size_t calls = 0;
  empty.for_each_set_bit([&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);

  DynBitset dense(130);
  for (std::size_t i = 0; i < 130; ++i) dense.set(i);
  std::size_t next = 0;
  dense.for_each_set_bit([&](std::size_t i) { EXPECT_EQ(i, next++); });
  EXPECT_EQ(next, 130u);
}

TEST(DynBitset, WordViewHasZeroTrailingBits) {
  DynBitset b(70);  // two words, 6 used bits in the trailing word
  b.set(69);
  b.set(3);
  ASSERT_EQ(b.word_count(), 2u);
  EXPECT_EQ(b.word(0), std::uint64_t{1} << 3);
  EXPECT_EQ(b.word(1), std::uint64_t{1} << 5);
  b.reset(69);
  EXPECT_EQ(b.word(1), 0u);
}

TEST(DynBitset, ClearAllAndFindFirst) {
  DynBitset b(130);
  EXPECT_EQ(b.find_first(), 130u);
  b.set(128);
  EXPECT_EQ(b.find_first(), 128u);
  b.set(64);
  EXPECT_EQ(b.find_first(), 64u);
  b.clear_all();
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.find_first(), 130u);
}

TEST(DynBitset, OrAndAccumulatesOverlap) {
  DynBitset claimed(100);
  DynBitset conflicts(100);
  DynBitset first(100);
  DynBitset second(100);
  first.set(3);
  first.set(70);
  second.set(70);
  second.set(90);
  conflicts.or_and(claimed, first);
  claimed |= first;
  EXPECT_TRUE(conflicts.none());
  conflicts.or_and(claimed, second);
  claimed |= second;
  EXPECT_EQ(conflicts.bits(), (std::vector<std::size_t>{70}));
}

TEST(DynBitset, OrAndnotAccumulatesDifference) {
  DynBitset acc(100);
  DynBitset need(100);
  DynBitset have(100);
  need.set(2);
  need.set(65);
  need.set(99);
  have.set(65);
  acc.or_andnot(need, have);
  EXPECT_EQ(acc.bits(), (std::vector<std::size_t>{2, 99}));
}

// --- Masked-tail invariant (bitset.hpp word-view contract) -----------------
// Every mutator keeps the unused bits of the trailing word zero, so word
// consumers — count(), the evaluation kernel's word loops, the SIMD tiers —
// may scan whole words without masking. These tests pin the invariant for
// each mutator over sizes that exercise an empty, partial and full tail.

namespace {
// Sum of word popcounts: equals count() only when the tail bits are zero.
std::uint64_t raw_word_popcount(const DynBitset& b) {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < b.word_count(); ++w)
    total += static_cast<std::uint64_t>(std::popcount(b.word(w)));
  return total;
}

std::uint64_t tail_garbage(const DynBitset& b) {
  if (b.size() % 64 == 0 || b.word_count() == 0) return 0;
  const std::uint64_t used_mask =
      (std::uint64_t{1} << (b.size() % 64)) - 1;
  return b.word(b.word_count() - 1) & ~used_mask;
}
}  // namespace

TEST(BitsetTest, TailWordStaysZeroThroughMutators) {
  for (const std::size_t nbits : {1u, 63u, 64u, 65u, 127u, 128u, 130u}) {
    DynBitset a(nbits);
    DynBitset b(nbits);
    for (std::size_t i = 0; i < nbits; i += 3) a.set(i);
    for (std::size_t i = 1; i < nbits; i += 2) b.set(i);
    EXPECT_EQ(tail_garbage(a), 0u) << nbits;
    a |= b;
    EXPECT_EQ(tail_garbage(a), 0u) << "|= at " << nbits;
    a &= b;
    EXPECT_EQ(tail_garbage(a), 0u) << "&= at " << nbits;
    DynBitset acc(nbits);
    acc.or_and(a, b);
    EXPECT_EQ(tail_garbage(acc), 0u) << "or_and at " << nbits;
    acc.or_andnot(a, b);
    EXPECT_EQ(tail_garbage(acc), 0u) << "or_andnot at " << nbits;
    acc.clear_all();
    EXPECT_EQ(tail_garbage(acc), 0u) << "clear_all at " << nbits;
    if (nbits > 1) {
      a.set(nbits - 1);
      a.reset(nbits - 1);
      EXPECT_EQ(tail_garbage(a), 0u) << "set/reset at " << nbits;
    }
  }
}

TEST(BitsetTest, TailWordCountMatchesWordPopcounts) {
  // count() folds raw words; with a clean tail the two totals agree for
  // any mutation sequence on an awkward (non-multiple-of-64) size.
  DynBitset b(97);
  for (std::size_t i = 0; i < 97; i += 5) b.set(i);
  DynBitset m(97);
  for (std::size_t i = 0; i < 97; i += 7) m.set(i);
  b |= m;
  EXPECT_EQ(b.count(), raw_word_popcount(b));
  b &= m;
  EXPECT_EQ(b.count(), raw_word_popcount(b));
  b.set(96);
  b.reset(0);
  EXPECT_EQ(b.count(), raw_word_popcount(b));
}

TEST(BitsetTest, TailWordMutableWordsPreservesInvariantForSameCapacityOr) {
  // The §4e SIMD tiers combine same-capacity sets through mutable_words();
  // OR/AND/ANDNOT of zero tails leaves a zero tail.
  DynBitset dst(70);
  DynBitset src(70);
  src.set(69);
  src.set(1);
  std::uint64_t* d = dst.mutable_words();
  const std::uint64_t* s = src.words();
  for (std::size_t w = 0; w < dst.word_count(); ++w) d[w] |= s[w];
  EXPECT_EQ(tail_garbage(dst), 0u);
  EXPECT_EQ(dst.bits(), (std::vector<std::size_t>{1, 69}));
  EXPECT_EQ(dst.count(), raw_word_popcount(dst));
}

}  // namespace
}  // namespace prpart
