#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart {
namespace {

TEST(Histogram, BucketsSamples) {
  Histogram h(0, 10, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.9);
  h.add(9.5);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[9], 1u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0, 10, 5);
  h.add(-100.0);
  h.add(1000.0);
  EXPECT_EQ(h.counts().front(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
}

TEST(Histogram, BucketBounds) {
  Histogram h(-10, 10, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), -10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), -5.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 5.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 10.0);
}

TEST(Histogram, FractionAbove) {
  Histogram h(0, 100, 10);
  h.add(10);
  h.add(20);
  h.add(30);
  h.add(40);
  EXPECT_DOUBLE_EQ(h.fraction_above(25), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_above(0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(100), 0.0);
}

TEST(Histogram, FractionAboveEmpty) {
  Histogram h(0, 1, 2);
  EXPECT_DOUBLE_EQ(h.fraction_above(0.5), 0.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1, 1, 4), InternalError);
  EXPECT_THROW(Histogram(2, 1, 4), InternalError);
  EXPECT_THROW(Histogram(0, 1, 0), InternalError);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0, 10, 2);
  for (int i = 0; i < 7; ++i) h.add(1);
  h.add(8);
  const std::string out = h.render("title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find(" 7"), std::string::npos);
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

}  // namespace
}  // namespace prpart
