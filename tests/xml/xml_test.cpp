#include "xml/xml.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart::xml {
namespace {

TEST(Xml, ParsesSimpleElement) {
  const auto root = parse("<root/>");
  EXPECT_EQ(root->name(), "root");
  EXPECT_TRUE(root->children().empty());
  EXPECT_TRUE(root->text().empty());
}

TEST(Xml, ParsesAttributes) {
  const auto root = parse(R"(<m name="A" count='3'/>)");
  EXPECT_EQ(root->attr("name"), "A");
  EXPECT_EQ(root->attr("count"), "3");
  EXPECT_TRUE(root->has_attr("name"));
  EXPECT_FALSE(root->has_attr("missing"));
  EXPECT_THROW(root->attr("missing"), ParseError);
}

TEST(Xml, ParsesNestedChildren) {
  const auto root = parse("<a><b><c/></b><b/></a>");
  EXPECT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->children_named("b").size(), 2u);
  EXPECT_EQ(root->child("b").children().size(), 1u);
  EXPECT_EQ(root->find_child("missing"), nullptr);
  EXPECT_THROW(root->child("missing"), ParseError);
}

TEST(Xml, ParsesText) {
  const auto root = parse("<a>  hello world  </a>");
  EXPECT_EQ(root->text(), "hello world");
}

TEST(Xml, ParsesEntities) {
  const auto root = parse(R"(<a v="&lt;x&gt;">&amp;&quot;&apos;</a>)");
  EXPECT_EQ(root->attr("v"), "<x>");
  EXPECT_EQ(root->text(), "&\"'");
}

TEST(Xml, SkipsCommentsAndDeclarations) {
  const auto root = parse(
      "<?xml version=\"1.0\"?>\n"
      "<!-- leading comment -->\n"
      "<a><!-- inner --><b/></a>\n"
      "<!-- trailing -->");
  EXPECT_EQ(root->name(), "a");
  EXPECT_EQ(root->children().size(), 1u);
}

TEST(Xml, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("<a>"), ParseError);
  EXPECT_THROW(parse("<a></b>"), ParseError);
  EXPECT_THROW(parse("<a attr></a>"), ParseError);
  EXPECT_THROW(parse("<a/><b/>"), ParseError);
  EXPECT_THROW(parse("<a v=unquoted/>"), ParseError);
  EXPECT_THROW(parse("<a>&bogus;</a>"), ParseError);
  EXPECT_THROW(parse("<!-- unterminated"), ParseError);
}

TEST(Xml, ErrorsCarryLineNumbers) {
  try {
    parse("<a>\n<b>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Xml, RoundTripsThroughToString) {
  const std::string doc =
      "<design name=\"d&amp;d\">\n"
      "  <module name=\"A\">\n"
      "    <mode name=\"A1\" clbs=\"10\"/>\n"
      "  </module>\n"
      "</design>\n";
  const auto first = parse(doc);
  const auto second = parse(first->to_string());
  EXPECT_EQ(second->attr("name"), "d&d");
  EXPECT_EQ(second->child("module").child("mode").attr("clbs"), "10");
  // Serialisation is a fixed point after one round.
  EXPECT_EQ(first->to_string(), second->to_string());
}

TEST(Xml, BuildsDocumentsProgrammatically) {
  Element root("list");
  Element& item = root.add_child("item");
  item.set_attr("id", "1");
  item.set_text("payload <raw>");
  const auto reparsed = parse(root.to_string());
  EXPECT_EQ(reparsed->child("item").text(), "payload <raw>");
}

TEST(Xml, SetAttrOverwrites) {
  Element e("x");
  e.set_attr("k", "1");
  e.set_attr("k", "2");
  EXPECT_EQ(e.attr("k"), "2");
  EXPECT_EQ(e.attrs().size(), 1u);
}

}  // namespace
}  // namespace prpart::xml
