// Robustness: the XML parser must never crash or hang on corrupted input —
// every mutated document either parses or raises ParseError. Seeded
// mutations keep the sweep reproducible.
#include <gtest/gtest.h>

#include "design/io_xml.hpp"
#include "synth/ip_library.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "xml/xml.hpp"

namespace prpart::xml {
namespace {

class XmlFuzz : public ::testing::TestWithParam<std::uint64_t> {};

std::string base_document() {
  return design_to_xml(synth::wireless_receiver_design());
}

std::string mutate(Rng& rng, std::string doc, int edits) {
  for (int e = 0; e < edits; ++e) {
    if (doc.empty()) break;
    const std::size_t pos = rng.below(doc.size());
    switch (rng.below(4)) {
      case 0:  // flip to a random printable byte
        doc[pos] = static_cast<char>(32 + rng.below(95));
        break;
      case 1:  // delete a byte
        doc.erase(pos, 1);
        break;
      case 2:  // duplicate a byte
        doc.insert(pos, 1, doc[pos]);
        break;
      case 3:  // truncate
        doc.resize(pos);
        break;
    }
  }
  return doc;
}

TEST_P(XmlFuzz, MutatedDocumentsParseOrThrowCleanly) {
  Rng rng(GetParam());
  const std::string base = base_document();
  for (int round = 0; round < 50; ++round) {
    const int edits = 1 + static_cast<int>(rng.below(8));
    const std::string doc = mutate(rng, base, edits);
    try {
      const auto root = parse(doc);
      // Parsed XML may still violate the design schema.
      try {
        const Design d = design_from_xml(doc);
        (void)d;
      } catch (const Error&) {
        // ParseError / DesignError are the contract.
      }
    } catch (const ParseError&) {
      // expected for malformed bytes
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(XmlFuzz, DeepNestingDoesNotOverflowQuickly) {
  // 2000 levels of nesting: the recursive-descent parser must survive
  // (depth is bounded by input size; this guards against quadratic blowup
  // or premature limits).
  std::string doc;
  for (int i = 0; i < 2000; ++i) doc += "<a>";
  for (int i = 0; i < 2000; ++i) doc += "</a>";
  EXPECT_NO_THROW(parse(doc));
}

TEST(XmlFuzz, HugeAttributeValue) {
  const std::string doc =
      "<a v=\"" + std::string(1 << 20, 'x') + "\"/>";
  const auto root = parse(doc);
  EXPECT_EQ(root->attr("v").size(), std::size_t{1} << 20);
}

TEST(XmlFuzz, ManySiblings) {
  std::string doc = "<root>";
  for (int i = 0; i < 20000; ++i) doc += "<c/>";
  doc += "</root>";
  const auto root = parse(doc);
  EXPECT_EQ(root->children().size(), 20000u);
}

}  // namespace
}  // namespace prpart::xml
