#include "reconfig/icap_datapath.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart {
namespace {

TEST(IcapDatapath, SingleCommandMatchesIcapModel) {
  IcapDatapath dp;
  const IcapCompletion c = dp.submit({1000, 500});
  EXPECT_EQ(c.start_ns, 1000u);
  EXPECT_EQ(c.wait_ns, 0u);
  EXPECT_EQ(c.transfer_ns, dp.timing().reconfiguration_ns(500));
  EXPECT_EQ(c.done_ns, 1000u + c.transfer_ns);
}

TEST(IcapDatapath, DefaultTimingGolden) {
  // Hand-computed against the default model: 41 words/frame * 4 B = 164 B
  // per frame; the effective bandwidth is min(800 MB/s fetch, 4 B * 100 MHz
  // ICAP) = 400 MB/s, i.e. exactly 410 ns per frame; plus the fixed 2000 ns
  // fetch setup. 10 frames: 2000 + 10 * 410 = 6100 ns.
  IcapDatapath dp;
  EXPECT_EQ(dp.timing().bitstream_bytes(10), 1640u);
  EXPECT_EQ(dp.timing().effective_bandwidth_bps(), 400'000'000u);
  EXPECT_EQ(dp.timing().reconfiguration_ns(1), 2410u);
  EXPECT_EQ(dp.timing().reconfiguration_ns(10), 6100u);
  const IcapCompletion c = dp.submit({0, 10});
  EXPECT_EQ(c.done_ns, 6100u);
  // A command landing mid-transfer queues: submitted at 3000 ns, it waits
  // 3100 ns for the port and completes at 6100 + 6100 ns.
  const IcapCompletion d = dp.submit({3000, 10});
  EXPECT_EQ(d.wait_ns, 3100u);
  EXPECT_EQ(d.done_ns, 12200u);
}

TEST(IcapDatapath, BackToBackCommandsQueue) {
  IcapDatapath dp;
  const IcapCompletion a = dp.submit({0, 1000});
  const IcapCompletion b = dp.submit({0, 1000});
  EXPECT_EQ(b.start_ns, a.done_ns);
  EXPECT_EQ(b.wait_ns, a.done_ns);
  EXPECT_EQ(dp.stats().max_wait_ns, b.wait_ns);
  EXPECT_EQ(dp.stats().total_wait_ns, b.wait_ns);
}

TEST(IcapDatapath, IdleGapsResetQueueing) {
  IcapDatapath dp;
  const IcapCompletion a = dp.submit({0, 100});
  const IcapCompletion b = dp.submit({a.done_ns + 5000, 100});
  EXPECT_EQ(b.wait_ns, 0u);
  EXPECT_EQ(b.start_ns, a.done_ns + 5000);
}

TEST(IcapDatapath, ZeroFrameCompletesInstantly) {
  IcapDatapath dp;
  dp.submit({0, 1000});
  const IcapCompletion z = dp.submit({10, 0});
  EXPECT_EQ(z.done_ns, 10u);
  EXPECT_EQ(z.transfer_ns, 0u);
  EXPECT_EQ(dp.stats().commands, 1u);  // zero-frame not counted
}

TEST(IcapDatapath, RejectsOutOfOrderSubmission) {
  IcapDatapath dp;
  dp.submit({100, 10});
  EXPECT_THROW(dp.submit({50, 10}), InternalError);
}

TEST(IcapDatapath, StatsAccumulate) {
  IcapDatapath dp;
  std::uint64_t expected_bytes = 0;
  for (int i = 0; i < 10; ++i) {
    dp.submit({0, 200});
    expected_bytes += dp.timing().bitstream_bytes(200);
  }
  EXPECT_EQ(dp.stats().commands, 10u);
  EXPECT_EQ(dp.stats().bytes, expected_bytes);
  EXPECT_EQ(dp.stats().busy_ns, 10 * dp.timing().reconfiguration_ns(200));
}

TEST(IcapDatapath, SaturatedPortUtilizationApproachesOne) {
  IcapDatapath dp;
  for (int i = 0; i < 50; ++i) dp.submit({0, 1000});
  EXPECT_GT(dp.utilization(), 0.99);
  EXPECT_LE(dp.utilization(), 1.0);
}

TEST(IcapDatapath, SparseTrafficHasLowUtilization) {
  IcapDatapath dp;
  std::uint64_t t = 0;
  for (int i = 0; i < 10; ++i) {
    const IcapCompletion c = dp.submit({t, 100});
    t = c.done_ns + 10 * c.transfer_ns;  // long idle gaps
  }
  EXPECT_LT(dp.utilization(), 0.2);
}

}  // namespace
}  // namespace prpart
