#include "reconfig/icap_datapath.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart {
namespace {

TEST(IcapDatapath, SingleCommandMatchesIcapModel) {
  IcapDatapath dp;
  const IcapCompletion c = dp.submit({1000, 500});
  EXPECT_EQ(c.start_ns, 1000u);
  EXPECT_EQ(c.wait_ns, 0u);
  EXPECT_EQ(c.transfer_ns, dp.timing().reconfiguration_ns(500));
  EXPECT_EQ(c.done_ns, 1000u + c.transfer_ns);
}

TEST(IcapDatapath, BackToBackCommandsQueue) {
  IcapDatapath dp;
  const IcapCompletion a = dp.submit({0, 1000});
  const IcapCompletion b = dp.submit({0, 1000});
  EXPECT_EQ(b.start_ns, a.done_ns);
  EXPECT_EQ(b.wait_ns, a.done_ns);
  EXPECT_EQ(dp.stats().max_wait_ns, b.wait_ns);
  EXPECT_EQ(dp.stats().total_wait_ns, b.wait_ns);
}

TEST(IcapDatapath, IdleGapsResetQueueing) {
  IcapDatapath dp;
  const IcapCompletion a = dp.submit({0, 100});
  const IcapCompletion b = dp.submit({a.done_ns + 5000, 100});
  EXPECT_EQ(b.wait_ns, 0u);
  EXPECT_EQ(b.start_ns, a.done_ns + 5000);
}

TEST(IcapDatapath, ZeroFrameCompletesInstantly) {
  IcapDatapath dp;
  dp.submit({0, 1000});
  const IcapCompletion z = dp.submit({10, 0});
  EXPECT_EQ(z.done_ns, 10u);
  EXPECT_EQ(z.transfer_ns, 0u);
  EXPECT_EQ(dp.stats().commands, 1u);  // zero-frame not counted
}

TEST(IcapDatapath, RejectsOutOfOrderSubmission) {
  IcapDatapath dp;
  dp.submit({100, 10});
  EXPECT_THROW(dp.submit({50, 10}), InternalError);
}

TEST(IcapDatapath, StatsAccumulate) {
  IcapDatapath dp;
  std::uint64_t expected_bytes = 0;
  for (int i = 0; i < 10; ++i) {
    dp.submit({0, 200});
    expected_bytes += dp.timing().bitstream_bytes(200);
  }
  EXPECT_EQ(dp.stats().commands, 10u);
  EXPECT_EQ(dp.stats().bytes, expected_bytes);
  EXPECT_EQ(dp.stats().busy_ns, 10 * dp.timing().reconfiguration_ns(200));
}

TEST(IcapDatapath, SaturatedPortUtilizationApproachesOne) {
  IcapDatapath dp;
  for (int i = 0; i < 50; ++i) dp.submit({0, 1000});
  EXPECT_GT(dp.utilization(), 0.99);
  EXPECT_LE(dp.utilization(), 1.0);
}

TEST(IcapDatapath, SparseTrafficHasLowUtilization) {
  IcapDatapath dp;
  std::uint64_t t = 0;
  for (int i = 0; i < 10; ++i) {
    const IcapCompletion c = dp.submit({t, 100});
    t = c.done_ns + 10 * c.transfer_ns;  // long idle gaps
  }
  EXPECT_LT(dp.utilization(), 0.2);
}

}  // namespace
}  // namespace prpart
