#include "reconfig/application.hpp"

#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

struct Fixture {
  Design design = paper_example();
  PartitionerResult result = partition_design(design, {900, 8, 16});

  ApplicationModel app() const {
    ApplicationModel m;
    m.items_per_second.assign(design.configurations().size(), 2'000'000.0);
    m.arrival_items_per_second = 1'000'000.0;
    m.mean_dwell_ns = 5'000'000.0;
    return m;
  }
};

TEST(Application, NoLossWhenRatesKeepUpAndNoStalls) {
  // Static-equivalent scheme (huge budget): zero reconfiguration frames,
  // pipeline faster than the arrivals -> nothing lost.
  Fixture f;
  const PartitionerResult roomy =
      partition_design(f.design, {100000, 1000, 1000});
  ASSERT_TRUE(roomy.feasible);
  ASSERT_EQ(roomy.proposed.eval.total_frames, 0u);
  Rng rng(1);
  const ApplicationStats s = simulate_application(
      f.design, roomy.proposed.eval, f.app(),
      MarkovChain::uniform(f.design.configurations().size()), 200, rng);
  EXPECT_EQ(s.stall_ns, 0u);
  EXPECT_DOUBLE_EQ(s.items_lost, 0.0);
  EXPECT_DOUBLE_EQ(s.availability, 1.0);
}

TEST(Application, StallsLoseItems) {
  Fixture f;
  ASSERT_TRUE(f.result.feasible);
  ASSERT_GT(f.result.proposed.eval.total_frames, 0u);
  Rng rng(2);
  const ApplicationStats s = simulate_application(
      f.design, f.result.proposed.eval, f.app(),
      MarkovChain::uniform(f.design.configurations().size()), 500, rng);
  EXPECT_GT(s.stall_ns, 0u);
  EXPECT_GT(s.items_lost, 0.0);
  EXPECT_LT(s.availability, 1.0);
  EXPECT_GT(s.availability, 0.5);
  EXPECT_NEAR(s.items_processed + s.items_lost, s.items_arrived, 1.0);
}

TEST(Application, SlowConfigurationLosesByRateShortfall) {
  Fixture f;
  ApplicationModel slow = f.app();
  // Every configuration processes at half the arrival rate.
  slow.items_per_second.assign(f.design.configurations().size(), 500'000.0);
  const PartitionerResult roomy =
      partition_design(f.design, {100000, 1000, 1000});
  Rng rng(3);
  const ApplicationStats s = simulate_application(
      f.design, roomy.proposed.eval, slow,
      MarkovChain::uniform(f.design.configurations().size()), 200, rng);
  // ~50% of arrivals lost even with zero stalls.
  EXPECT_NEAR(s.loss_fraction, 0.5, 0.02);
}

TEST(Application, LowerFrameSchemeLosesFewerItems) {
  // The point of the paper's objective, measured at application level: the
  // proposed scheme's lower total frames translate into fewer lost items
  // than the single-region scheme on the same walk distribution.
  Fixture f;
  ASSERT_TRUE(f.result.feasible);
  Rng rng_a(4);
  const ApplicationStats proposed = simulate_application(
      f.design, f.result.proposed.eval, f.app(),
      MarkovChain::uniform(f.design.configurations().size()), 2000, rng_a);
  Rng rng_b(4);  // identical walk
  const ApplicationStats single = simulate_application(
      f.design, f.result.single_region.eval, f.app(),
      MarkovChain::uniform(f.design.configurations().size()), 2000, rng_b);
  EXPECT_LT(proposed.stall_ns, single.stall_ns);
  EXPECT_LT(proposed.items_lost, single.items_lost);
  EXPECT_GT(proposed.availability, single.availability);
}

TEST(Application, ValidatesInputs) {
  Fixture f;
  ApplicationModel bad = f.app();
  bad.items_per_second.pop_back();
  Rng rng(5);
  EXPECT_THROW(
      simulate_application(f.design, f.result.proposed.eval, bad,
                           MarkovChain::uniform(
                               f.design.configurations().size()),
                           10, rng),
      InternalError);

  ApplicationModel zero = f.app();
  zero.arrival_items_per_second = 0;
  EXPECT_THROW(
      simulate_application(f.design, f.result.proposed.eval, zero,
                           MarkovChain::uniform(
                               f.design.configurations().size()),
                           10, rng),
      InternalError);
}

}  // namespace
}  // namespace prpart
