#include "reconfig/policy.hpp"

#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "reconfig/markov.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

struct Fixture {
  Design design = paper_example();
  PartitionerResult result = partition_design(design, {900, 8, 16});

  ReconfigurationController controller() const {
    ReconfigurationController c(design, result.proposed.scheme,
                                result.proposed.eval);
    c.boot(0);
    return c;
  }
};

TEST(AdaptationPolicy, SpecificRuleBeatsWildcard) {
  AdaptationPolicy p(5);
  p.add_rule(AdaptationPolicy::kAnyConfig, "fallback", 0);
  p.add_rule(2, "fallback", 4);
  EXPECT_EQ(p.target(2, "fallback"), 4u);
  EXPECT_EQ(p.target(1, "fallback"), 0u);
}

TEST(AdaptationPolicy, UnmatchedEventIsIgnored) {
  AdaptationPolicy p(3);
  p.add_rule(0, "go", 1);
  EXPECT_FALSE(p.target(1, "go").has_value());
  EXPECT_FALSE(p.target(0, "unknown").has_value());
}

TEST(AdaptationPolicy, Validation) {
  AdaptationPolicy p(3);
  EXPECT_THROW(p.add_rule(5, "x", 0), InternalError);
  EXPECT_THROW(p.add_rule(0, "x", 5), InternalError);
  EXPECT_THROW(p.add_rule(0, "", 1), InternalError);
  p.add_rule(0, "x", 1);
  EXPECT_THROW(p.add_rule(0, "x", 2), InternalError);  // duplicate
  EXPECT_THROW(p.target(9, "x"), InternalError);
  EXPECT_THROW(AdaptationPolicy(0), InternalError);
}

TEST(AdaptationPolicy, RunDrivesController) {
  Fixture f;
  auto ctl = f.controller();
  AdaptationPolicy p(f.design.configurations().size());
  p.add_rule(0, "degrade", 1);
  p.add_rule(1, "degrade", 2);
  p.add_rule(AdaptationPolicy::kAnyConfig, "reset", 0);

  const PolicyRunResult r = run_policy(
      ctl, p, {"degrade", "noise", "degrade", "reset", "degrade"});
  EXPECT_EQ(r.events, 5u);
  EXPECT_EQ(r.applied, 4u);
  EXPECT_EQ(r.ignored, 1u);
  EXPECT_EQ(r.path, (std::vector<std::size_t>{0, 1, 2, 0, 1}));
  EXPECT_EQ(ctl.current_config(), 1u);
  EXPECT_EQ(ctl.stats().transitions, 4u);
}

TEST(AdaptationPolicy, SelfLoopRulesDoNotReconfigure) {
  Fixture f;
  auto ctl = f.controller();
  AdaptationPolicy p(f.design.configurations().size());
  p.add_rule(0, "stay", 0);
  const PolicyRunResult r = run_policy(ctl, p, {"stay", "stay"});
  EXPECT_EQ(r.self_loops, 2u);
  EXPECT_EQ(r.applied, 0u);
  EXPECT_EQ(ctl.stats().transitions, 0u);
}

TEST(AdaptationPolicy, PolicyCostMatchesCostModelOnWarmCycle) {
  Fixture f;
  auto ctl = f.controller();
  AdaptationPolicy p(f.design.configurations().size());
  p.add_rule(0, "flip", 1);
  p.add_rule(1, "flop", 0);
  // Warm both configurations, then measure one full cycle.
  run_policy(ctl, p, {"flip", "flop"});
  ctl.reset_stats();
  run_policy(ctl, p, {"flip", "flop"});
  const auto frames = transition_frame_matrix(
      f.result.proposed.eval, f.design.configurations().size());
  EXPECT_EQ(ctl.stats().total_frames, 2 * frames[0][1]);
}

}  // namespace
}  // namespace prpart
