#include "reconfig/markov.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/partitioner.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

TEST(MarkovChain, UniformChainProperties) {
  const MarkovChain c = MarkovChain::uniform(5);
  EXPECT_EQ(c.states(), 5u);
  EXPECT_DOUBLE_EQ(c.probability(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c.probability(0, 1), 0.25);
  const auto pi = c.stationary();
  for (double p : pi) EXPECT_NEAR(p, 0.2, 1e-9);
}

TEST(MarkovChain, RejectsBadMatrices) {
  EXPECT_THROW(MarkovChain(std::vector<std::vector<double>>{}),
               InternalError);
  using Rows = std::vector<std::vector<double>>;
  EXPECT_THROW(MarkovChain(Rows{{0.5}}), InternalError);              // row sum
  EXPECT_THROW(MarkovChain(Rows{{1.0, 0.0}, {1.0}}), InternalError);  // ragged
  EXPECT_THROW(MarkovChain(Rows{{-0.5, 1.5}, {0.5, 0.5}}), InternalError);
}

TEST(MarkovChain, RandomChainIsStochastic) {
  Rng rng(5);
  const MarkovChain c = MarkovChain::random(rng, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    double sum = 0;
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_GE(c.probability(i, j), 0.0);
      sum += c.probability(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(c.probability(i, i), 0.0);
  }
}

TEST(MarkovChain, StationarySumsToOne) {
  Rng rng(9);
  const MarkovChain c = MarkovChain::random(rng, 4);
  const auto pi = c.stationary();
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-9);
}

TEST(MarkovChain, StationaryIsAFixedPointOfTheChain) {
  // pi P = pi: the power iteration must converge to an actual stationary
  // distribution, not just any normalised vector.
  Rng rng(31);
  for (const MarkovChain& c :
       {MarkovChain::uniform(5), MarkovChain::random(rng, 4),
        MarkovChain::random(rng, 7)}) {
    const auto pi = c.stationary();
    ASSERT_EQ(pi.size(), c.states());
    for (std::size_t j = 0; j < c.states(); ++j) {
      double next = 0;
      for (std::size_t i = 0; i < c.states(); ++i)
        next += pi[i] * c.probability(i, j);
      EXPECT_NEAR(next, pi[j], 1e-9) << "state " << j;
    }
  }
}

TEST(MarkovChain, SampleNextFollowsDistribution) {
  const MarkovChain c = MarkovChain::uniform(3);
  Rng rng(17);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) ++counts[c.sample_next(rng, 0)];
  EXPECT_EQ(counts[0], 0);  // no self transitions
  EXPECT_NEAR(static_cast<double>(counts[1]) / 30000, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 30000, 0.5, 0.02);
}

class MarkovCost : public ::testing::Test {
 protected:
  Design design_ = paper_example();
  PartitionerResult result_ = partition_design(design_, {900, 8, 16});
};

TEST_F(MarkovCost, FrameMatrixIsSymmetricWithZeroDiagonal) {
  const std::size_t n = design_.configurations().size();
  const auto f = transition_frame_matrix(result_.proposed.eval, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(f[i][i], 0u);
    for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(f[i][j], f[j][i]);
  }
}

TEST_F(MarkovCost, UniformExpectationMatchesEq10Average) {
  // Under the uniform no-self-loop chain, the expected frames per
  // transition equal the Eq. 10 total divided by the number of unordered
  // pairs (each pair is visited with equal probability in both directions).
  const std::size_t n = design_.configurations().size();
  const MarkovChain chain = MarkovChain::uniform(n);
  const double expected =
      expected_frames_per_transition(result_.proposed.eval, n, chain);
  const double pairs = static_cast<double>(n * (n - 1) / 2);
  const double eq10_avg =
      static_cast<double>(result_.proposed.eval.total_frames) / pairs;
  EXPECT_NEAR(expected, eq10_avg, 1e-6 * eq10_avg + 1e-9);
}

TEST_F(MarkovCost, SkewedChainDiffersFromUniformProxy) {
  // A chain that mostly oscillates between two configurations weights their
  // transition cost far more than the uniform proxy does.
  const std::size_t n = design_.configurations().size();
  ASSERT_GE(n, 3u);
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  const double eps = 0.02;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) p[i][j] = eps / static_cast<double>(n - 1);
    const std::size_t partner = i == 0 ? 1 : 0;
    p[i][partner] += 1.0 - eps - (i == 0 || partner == 0 ? 0.0 : 0.0);
    // Renormalise row exactly.
    double sum = 0;
    for (double v : p[i]) sum += v;
    for (double& v : p[i]) v /= sum;
  }
  const MarkovChain skewed(p);
  const double uniform = expected_frames_per_transition(
      result_.proposed.eval, n, MarkovChain::uniform(n));
  const double weighted =
      expected_frames_per_transition(result_.proposed.eval, n, skewed);
  EXPECT_NE(uniform, weighted);
}

TEST_F(MarkovCost, ChainSizeMismatchThrows) {
  EXPECT_THROW(expected_frames_per_transition(result_.proposed.eval, 5,
                                              MarkovChain::uniform(4)),
               InternalError);
}

}  // namespace
}  // namespace prpart
