#include "reconfig/prefetch.hpp"

#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "reconfig/controller.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::one_off_modules;
using testing::paper_example;

struct Fixture {
  Design design;
  PartitionerResult result;

  explicit Fixture(Design d, ResourceVec budget)
      : design(std::move(d)), result(partition_design(design, budget)) {
    if (!result.feasible) throw std::runtime_error("fixture infeasible");
  }
};

/// Deterministic cycle chain c0 -> c2 -> c1 -> c0 over three configs.
MarkovChain cycle021() {
  std::vector<std::vector<double>> p(3, std::vector<double>(3, 0.0));
  p[0][2] = 1.0;
  p[2][1] = 1.0;
  p[1][0] = 1.0;
  return MarkovChain(std::move(p));
}

/// Module A (two modes) shares one region under a 450-CLB budget; module B
/// is always on. Configuration c2 uses only B, leaving the A region idle —
/// the prefetch window the cycle exploits.
Design idle_window_design() {
  return DesignBuilder("idle-window")
      .module("A", {{"A1", {200, 0, 0}}, {"A2", {300, 0, 0}}})
      .module("B", {{"B1", {100, 0, 0}}})
      .configuration({{"A", "A1"}, {"B", "B1"}})  // c0
      .configuration({{"A", "A2"}, {"B", "B1"}})  // c1
      .configuration({{"B", "B1"}})               // c2
      .build();
}

TEST(Prefetch, PerfectPredictionHidesIdleRegionLoads) {
  // On the cycle c0 -> c2 -> c1 -> c0, the A region ({A1},{A2} merged) is
  // idle at c2; a perfect predictor preloads A2 there, so the c2 -> c1 hop
  // stalls zero frames while the plain controller pays the region's 540
  // frames. The c1 -> c0 hop cannot be hidden (the region is busy in c1).
  Fixture f(idle_window_design(), {450, 4, 4});
  ASSERT_TRUE(f.result.proposed_from_search);
  PrefetchingController pre(f.design, f.result.proposed.scheme,
                            f.result.proposed.eval, cycle021());
  ReconfigurationController plain(f.design, f.result.proposed.scheme,
                                  f.result.proposed.eval);
  pre.boot(0);
  plain.boot(0);
  const std::size_t walk[] = {2, 1, 0, 2, 1, 0, 2, 1, 0};
  for (std::size_t next : walk) {
    pre.transition(next);
    plain.transition(next);
  }
  // Three full cycles: plain pays 2 region loads per cycle, prefetch pays 1.
  EXPECT_GT(plain.stats().total_frames, 0u);
  EXPECT_EQ(2 * pre.stats().stall_frames, plain.stats().total_frames);
  EXPECT_GE(pre.stats().useful_prefetches, 3u);
}

TEST(Prefetch, HitAccountingGoldenOnTheCycle) {
  // Hand-walked golden for the full accounting. On c0 -> c2 -> c1 -> c0:
  //   c0 -> c2: A idle at c2, nothing to load; the predictor (cycle) says c1
  //             is next, so A2 is prefetched into the idle A region.
  //   c2 -> c1: A2 already loaded -- a useful prefetch, zero stall.
  //   c1 -> c0: A busy at c1, no window; reload A1 on the critical path.
  // Per cycle: 1 stall load, 1 prefetch, 1 useful hit, 0 wasted.
  Fixture f(idle_window_design(), {450, 4, 4});
  const SchemeEvaluation& eval = f.result.proposed.eval;
  std::uint64_t frames_a = 0;  // the merged {A1},{A2} region
  for (const RegionReport& r : eval.regions)
    if (r.reconfig_pairs > 0) frames_a = r.frames;
  ASSERT_GT(frames_a, 0u);

  PrefetchingController pre(f.design, f.result.proposed.scheme, eval,
                            cycle021());
  pre.boot(0);
  std::vector<std::uint64_t> stalls;
  const std::size_t walk[] = {2, 1, 0, 2, 1, 0, 2, 1, 0};
  for (const std::size_t next : walk) stalls.push_back(pre.transition(next));
  EXPECT_EQ(stalls, (std::vector<std::uint64_t>{0, 0, frames_a, 0, 0,
                                                frames_a, 0, 0, frames_a}));
  const PrefetchStats& s = pre.stats();
  EXPECT_EQ(s.transitions, 9u);
  EXPECT_EQ(s.stall_loads, 3u);
  EXPECT_EQ(s.stall_frames, 3 * frames_a);
  EXPECT_EQ(s.worst_stall_frames, frames_a);
  EXPECT_EQ(s.prefetched_frames, 3 * frames_a);
  EXPECT_EQ(s.useful_prefetches, 3u);
  EXPECT_EQ(s.wasted_prefetches, 0u);
  EXPECT_EQ(s.stall_ns, 3 * IcapModel{}.reconfiguration_ns(frames_a));
}

TEST(Prefetch, MispredictionIsCountedAsWasted) {
  // Same design, but the walk defies the cycle predictor: after c0 -> c2
  // the controller has speculatively loaded A2 for the predicted c1; going
  // back to c0 instead overwrites it, which must count as wasted, stall the
  // full region and never as a hit.
  Fixture f(idle_window_design(), {450, 4, 4});
  const SchemeEvaluation& eval = f.result.proposed.eval;
  std::uint64_t frames_a = 0;
  for (const RegionReport& r : eval.regions)
    if (r.reconfig_pairs > 0) frames_a = r.frames;

  PrefetchingController pre(f.design, f.result.proposed.scheme, eval,
                            cycle021());
  pre.boot(0);
  EXPECT_EQ(pre.transition(2), 0u);
  EXPECT_EQ(pre.transition(0), frames_a);
  const PrefetchStats& s = pre.stats();
  EXPECT_EQ(s.useful_prefetches, 0u);
  EXPECT_EQ(s.wasted_prefetches, 1u);
  EXPECT_EQ(s.prefetched_frames, frames_a);
  EXPECT_EQ(s.stall_loads, 1u);
  EXPECT_EQ(s.stall_frames, frames_a);
}

TEST(Prefetch, NeverWorseThanNoPrefetchOnActiveRegions) {
  // Prefetching only touches idle regions, so the stall of any transition
  // is at most the plain controller's cost for the same step sequence.
  Fixture f(paper_example(), {900, 8, 16});
  const std::size_t n = f.design.configurations().size();
  const MarkovChain uniform = MarkovChain::uniform(n);

  PrefetchingController pre(f.design, f.result.proposed.scheme,
                            f.result.proposed.eval, uniform);
  ReconfigurationController plain(f.design, f.result.proposed.scheme,
                                  f.result.proposed.eval);
  Rng rng(7);
  pre.boot(0);
  plain.boot(0);
  std::size_t state = 0;
  for (int i = 0; i < 300; ++i) {
    state = uniform.sample_next(rng, state);
    pre.transition(state);
    plain.transition(state);
  }
  EXPECT_LE(pre.stats().stall_frames, plain.stats().total_frames);
  EXPECT_EQ(pre.stats().transitions, plain.stats().transitions);
}

TEST(Prefetch, ZeroBudgetDisablesPrefetching) {
  Fixture f(paper_example(), {900, 8, 16});
  const std::size_t n = f.design.configurations().size();
  const MarkovChain uniform = MarkovChain::uniform(n);
  PrefetchingController pre(f.design, f.result.proposed.scheme,
                            f.result.proposed.eval, uniform, IcapModel{}, 0);
  ReconfigurationController plain(f.design, f.result.proposed.scheme,
                                  f.result.proposed.eval);
  Rng rng(9);
  pre.boot(0);
  plain.boot(0);
  std::size_t state = 0;
  for (int i = 0; i < 200; ++i) {
    state = uniform.sample_next(rng, state);
    pre.transition(state);
    plain.transition(state);
  }
  EXPECT_EQ(pre.stats().prefetched_frames, 0u);
  EXPECT_EQ(pre.stats().stall_frames, plain.stats().total_frames);
}

TEST(Prefetch, StatsTrackUsefulAndWasted) {
  Fixture f(paper_example(), {900, 8, 16});
  const std::size_t n = f.design.configurations().size();
  const MarkovChain uniform = MarkovChain::uniform(n);
  PrefetchingController pre(f.design, f.result.proposed.scheme,
                            f.result.proposed.eval, uniform);
  Rng rng(11);
  pre.boot(0);
  std::size_t state = 0;
  for (int i = 0; i < 400; ++i) {
    state = uniform.sample_next(rng, state);
    pre.transition(state);
  }
  const PrefetchStats& s = pre.stats();
  EXPECT_EQ(s.transitions, 400u);
  EXPECT_LE(s.worst_stall_frames, s.stall_frames);
  // Bookkeeping sanity: prefetches either became useful or were wasted (or
  // are still pending); none can be both.
  EXPECT_GE(s.prefetched_frames, 0u);
}

TEST(Prefetch, RejectsMismatchedPredictor) {
  Fixture f(paper_example(), {900, 8, 16});
  EXPECT_THROW(
      PrefetchingController(f.design, f.result.proposed.scheme,
                            f.result.proposed.eval, MarkovChain::uniform(3)),
      InternalError);
}

TEST(Prefetch, RequiresBoot) {
  Fixture f(paper_example(), {900, 8, 16});
  PrefetchingController pre(
      f.design, f.result.proposed.scheme, f.result.proposed.eval,
      MarkovChain::uniform(f.design.configurations().size()));
  EXPECT_THROW(pre.transition(0), InternalError);
}

}  // namespace
}  // namespace prpart
