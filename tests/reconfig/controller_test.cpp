#include "reconfig/controller.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/partitioner.hpp"
#include "reconfig/markov.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

struct Fixture {
  Design design = paper_example();
  PartitionerResult result =
      partition_design(design, ResourceVec{900, 8, 16});

  Fixture() {
    if (!result.feasible) throw std::runtime_error("fixture infeasible");
  }

  ReconfigurationController controller() const {
    return ReconfigurationController(design, result.proposed.scheme,
                                     result.proposed.eval);
  }
};

TEST(Controller, BootThenNoopTransitionIsFree) {
  Fixture f;
  auto c = f.controller();
  c.boot(0);
  // Transition to the same mode assignment of every region: re-entering the
  // current configuration costs nothing.
  const auto events = c.transition(0);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(c.stats().total_frames, 0u);
  EXPECT_EQ(c.stats().transitions, 1u);
}

TEST(Controller, WarmPairwiseTransitionsMatchCostModel) {
  // The simulator is the ground truth for Eq. 10: once both configurations
  // have been visited (all involved regions loaded), an i -> j transition
  // writes exactly the frames the transition matrix predicts, in both
  // directions.
  Fixture f;
  const std::size_t n = f.design.configurations().size();
  const auto frames = transition_frame_matrix(f.result.proposed.eval, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      auto c = f.controller();
      c.boot(i);
      c.transition(j);  // may include cold loads of regions blank after boot
      c.transition(i);  // now both configurations' regions are warm
      EXPECT_EQ(c.peek_frames(j), frames[i][j]) << i << "->" << j;
      c.reset_stats();
      c.transition(j);
      EXPECT_EQ(c.stats().total_frames, frames[i][j]) << i << "->" << j;
      EXPECT_EQ(c.current_config(), j);
    }
  }
}

TEST(Controller, ColdTransitionsPayAtLeastTheModel) {
  // Straight after boot, unused regions are blank, so the first transition
  // can only cost more than the warm model, never less.
  Fixture f;
  const std::size_t n = f.design.configurations().size();
  const auto frames = transition_frame_matrix(f.result.proposed.eval, n);
  auto c = f.controller();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      c.boot(i);
      EXPECT_GE(c.peek_frames(j), frames[i][j]) << i << "->" << j;
    }
}

TEST(Controller, Eq10EqualsSumOverUnorderedPairs) {
  Fixture f;
  const std::size_t n = f.design.configurations().size();
  const auto frames = transition_frame_matrix(f.result.proposed.eval, n);
  std::uint64_t total = 0;
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      total += frames[i][j];
      worst = std::max(worst, frames[i][j]);
    }
  EXPECT_EQ(total, f.result.proposed.eval.total_frames);
  EXPECT_EQ(worst, f.result.proposed.eval.worst_frames);
}

TEST(Controller, StaleContentsAvoidRewrites) {
  // In the warm steady state, oscillating i -> j -> i costs exactly twice
  // the pairwise model: regions untouched by j keep serving i for free.
  Fixture f;
  const std::size_t n = f.design.configurations().size();
  const auto frames = transition_frame_matrix(f.result.proposed.eval, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      auto c = f.controller();
      c.boot(i);
      c.transition(j);  // warm-up
      c.transition(i);
      c.reset_stats();
      c.transition(j);
      c.transition(i);
      EXPECT_EQ(c.stats().total_frames, 2 * frames[i][j]);
    }
}

TEST(Controller, StatsAccumulate) {
  Fixture f;
  auto c = f.controller();
  c.boot(0);
  const std::size_t n = f.design.configurations().size();
  for (std::size_t j = 1; j < n; ++j) c.transition(j);
  EXPECT_EQ(c.stats().transitions, n - 1);
  EXPECT_GT(c.stats().total_frames, 0u);
  EXPECT_GT(c.stats().total_ns, 0u);
  EXPECT_GE(c.stats().worst_transition_frames, 1u);
  EXPECT_LE(c.stats().worst_transition_frames, c.stats().total_frames);
  // Cold loads can exceed the warm worst case, but never the whole fabric.
  std::uint64_t all_regions = 0;
  for (const RegionReport& r : f.result.proposed.eval.regions)
    all_regions += r.frames;
  EXPECT_LE(c.stats().worst_transition_frames, all_regions);
}

TEST(Controller, RequiresBoot) {
  Fixture f;
  auto c = f.controller();
  EXPECT_THROW(c.transition(0), InternalError);
  EXPECT_THROW(c.peek_frames(0), InternalError);
}

TEST(Controller, RejectsOutOfRangeConfig) {
  Fixture f;
  auto c = f.controller();
  c.boot(0);
  EXPECT_THROW(c.transition(99), InternalError);
  EXPECT_THROW(c.boot(99), InternalError);
}

TEST(Controller, RejectsInvalidEvaluation) {
  Fixture f;
  SchemeEvaluation bad = f.result.proposed.eval;
  bad.valid = false;
  EXPECT_THROW(ReconfigurationController(f.design, f.result.proposed.scheme,
                                         bad),
               InternalError);
}

TEST(Controller, EventNanosecondsUseIcapModel) {
  Fixture f;
  IcapModel icap;
  ReconfigurationController c(f.design, f.result.proposed.scheme,
                              f.result.proposed.eval, icap);
  c.boot(0);
  for (std::size_t j = 1; j < f.design.configurations().size(); ++j) {
    for (const ReconfigEvent& ev : c.transition(j))
      EXPECT_EQ(ev.ns, icap.reconfiguration_ns(ev.frames));
  }
}

}  // namespace
}  // namespace prpart
