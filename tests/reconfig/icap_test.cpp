#include "reconfig/icap.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart {
namespace {

TEST(IcapModel, ZeroFramesIsFree) {
  EXPECT_EQ(IcapModel{}.reconfiguration_ns(0), 0u);
}

TEST(IcapModel, BitstreamBytesAre41WordsPerFrame) {
  EXPECT_EQ(IcapModel{}.bitstream_bytes(1), 41u * 4);
  EXPECT_EQ(IcapModel{}.bitstream_bytes(100), 100u * 41 * 4);
}

TEST(IcapModel, DefaultBandwidthIsIcapBound) {
  const IcapModel m;
  // 4 bytes x 100 MHz = 400 MB/s < 800 MB/s fetch.
  EXPECT_EQ(m.effective_bandwidth_bps(), 400'000'000u);
}

TEST(IcapModel, FetchBoundWhenMemoryIsSlow) {
  IcapModel m;
  m.fetch_bandwidth_bps = 100'000'000;
  EXPECT_EQ(m.effective_bandwidth_bps(), 100'000'000u);
}

TEST(IcapModel, TimeScalesLinearlyWithFrames) {
  const IcapModel m;
  const std::uint64_t t1 = m.reconfiguration_ns(1000);
  const std::uint64_t t2 = m.reconfiguration_ns(2000);
  // Subtracting the fixed latency, time doubles.
  EXPECT_EQ(t2 - m.fetch_latency_ns, 2 * (t1 - m.fetch_latency_ns));
}

TEST(IcapModel, KnownValue) {
  // 12234 frames (case-study single region) = 2,006,376 bytes at 400 MB/s
  // = 5,015,940 ns + 2,000 ns latency.
  const IcapModel m;
  EXPECT_EQ(m.reconfiguration_ns(12234), 5'015'940u + 2'000u);
}

TEST(IcapModel, InvalidConfigurationThrows) {
  IcapModel m;
  m.icap_width_bytes = 0;
  EXPECT_THROW(m.reconfiguration_ns(10), InternalError);
}

}  // namespace
}  // namespace prpart
