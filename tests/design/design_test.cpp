#include "design/design.hpp"

#include <gtest/gtest.h>

#include "design/builder.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

Design small_design() {
  return DesignBuilder("small")
      .static_base({90, 8, 0})
      .module("A", {{"A1", {100, 0, 2}}, {"A2", {200, 1, 0}}})
      .module("B", {{"B1", {50, 0, 0}}})
      .configuration({{"A", "A1"}, {"B", "B1"}})
      .configuration({{"A", "A2"}})
      .build();
}

TEST(Design, GlobalModeIndexing) {
  const Design d = small_design();
  EXPECT_EQ(d.mode_count(), 3u);
  EXPECT_EQ(d.global_mode_id(0, 1), 0u);
  EXPECT_EQ(d.global_mode_id(0, 2), 1u);
  EXPECT_EQ(d.global_mode_id(1, 1), 2u);
  EXPECT_EQ(d.mode_ref(0), (ModeRef{0, 1}));
  EXPECT_EQ(d.mode_ref(2), (ModeRef{1, 1}));
  EXPECT_EQ(d.mode_label(1), "A2");
  EXPECT_EQ(d.mode_area(1), ResourceVec(200, 1, 0));
}

TEST(Design, ConfigModesAsBitsets) {
  const Design d = small_design();
  EXPECT_TRUE(d.config_modes(0).test(0));
  EXPECT_TRUE(d.config_modes(0).test(2));
  EXPECT_FALSE(d.config_modes(0).test(1));
  // Second configuration: A2 only, B absent (mode 0).
  EXPECT_TRUE(d.config_modes(1).test(1));
  EXPECT_EQ(d.config_modes(1).count(), 1u);
}

TEST(Design, ConfigArea) {
  const Design d = small_design();
  EXPECT_EQ(d.config_area(0), ResourceVec(150, 0, 2));
  EXPECT_EQ(d.config_area(1), ResourceVec(200, 1, 0));
}

TEST(Design, LargestConfigurationIsElementwise) {
  const Design d = small_design();
  // max(150,200) CLBs, max(0,1) BRAMs, max(2,0) DSPs.
  EXPECT_EQ(d.largest_configuration_area(), ResourceVec(200, 1, 2));
}

TEST(Design, FullStaticArea) {
  const Design d = small_design();
  EXPECT_EQ(d.full_static_area(), ResourceVec(350, 1, 2));
}

TEST(Design, ModeUsed) {
  const Design d = DesignBuilder("x")
                       .module("A", {{"A1", {10, 0, 0}}, {"A2", {20, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  EXPECT_TRUE(d.mode_used(0));
  EXPECT_FALSE(d.mode_used(1));  // A2 never appears: dead mode
}

TEST(Design, ValidationRejectsNoModules) {
  EXPECT_THROW(Design("x", {}, {}, {Configuration{"c", {}}}), DesignError);
}

TEST(Design, ValidationRejectsNoConfigurations) {
  EXPECT_THROW(Design("x", {}, {Module{"A", {{"A1", {1, 0, 0}}}}}, {}),
               DesignError);
}

TEST(Design, ValidationRejectsDuplicateModuleNames) {
  EXPECT_THROW(DesignBuilder("x")
                   .module("A", {{"A1", {1, 0, 0}}})
                   .module("A", {{"A2", {1, 0, 0}}})
                   .configuration({{"A", "A1"}})
                   .build(),
               DesignError);
}

TEST(Design, ValidationRejectsDuplicateModeNames) {
  EXPECT_THROW(DesignBuilder("x")
                   .module("A", {{"A1", {1, 0, 0}}, {"A1", {2, 0, 0}}})
                   .configuration({{"A", "A1"}})
                   .build(),
               DesignError);
}

TEST(Design, ValidationRejectsEmptyConfiguration) {
  Configuration empty{"none", {0}};
  EXPECT_THROW(Design("x", {}, {Module{"A", {{"A1", {1, 0, 0}}}}}, {empty}),
               DesignError);
}

TEST(Design, ValidationRejectsOutOfRangeMode) {
  Configuration bad{"bad", {2}};
  EXPECT_THROW(Design("x", {}, {Module{"A", {{"A1", {1, 0, 0}}}}}, {bad}),
               DesignError);
}

TEST(Design, ValidationRejectsWrongArity) {
  Configuration bad{"bad", {1, 1}};
  EXPECT_THROW(Design("x", {}, {Module{"A", {{"A1", {1, 0, 0}}}}}, {bad}),
               DesignError);
}

TEST(Design, ValidationRejectsDuplicateConfigurations) {
  Configuration c1{"c1", {1}};
  Configuration c2{"c2", {1}};
  EXPECT_THROW(
      Design("x", {}, {Module{"A", {{"A1", {1, 0, 0}}}}}, {c1, c2}),
      DesignError);
}

TEST(Design, ModuleWithNoModesRejected) {
  EXPECT_THROW(
      Design("x", {}, {Module{"A", {}}}, {Configuration{"c", {0}}}),
      DesignError);
}

}  // namespace
}  // namespace prpart
