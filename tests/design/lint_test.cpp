#include "design/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "design/builder.hpp"
#include "synth/ip_library.hpp"

namespace prpart {
namespace {

bool has_code(const std::vector<LintIssue>& issues, const std::string& code) {
  return std::any_of(issues.begin(), issues.end(),
                     [&](const LintIssue& i) { return i.code == code; });
}

TEST(Lint, CleanDesignHasNoWarnings) {
  const Design d = DesignBuilder("clean")
                       .module("A", {{"A1", {100, 0, 0}}, {"A2", {200, 0, 0}}})
                       .module("B", {{"B1", {50, 0, 0}}, {"B2", {60, 0, 0}}})
                       .configuration({{"A", "A1"}, {"B", "B1"}})
                       .configuration({{"A", "A2"}, {"B", "B2"}})
                       .configuration({{"A", "A1"}, {"B", "B2"}})
                       .build();
  for (const LintIssue& i : lint_design(d))
    EXPECT_NE(i.severity, LintSeverity::Warning) << i.message;
}

TEST(Lint, DetectsDeadMode) {
  const Design d = DesignBuilder("x")
                       .module("A", {{"A1", {10, 0, 0}}, {"A2", {20, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  EXPECT_TRUE(has_code(lint_design(d), "dead-mode"));
}

TEST(Lint, DetectsUnusedModule) {
  const Design d = DesignBuilder("x")
                       .module("A", {{"A1", {10, 0, 0}}})
                       .module("B", {{"B1", {10, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  const auto issues = lint_design(d);
  EXPECT_TRUE(has_code(issues, "unused-module"));
}

TEST(Lint, DetectsAlwaysOnMode) {
  const Design d = DesignBuilder("x")
                       .module("A", {{"A1", {10, 0, 0}}, {"A2", {20, 0, 0}}})
                       .module("B", {{"B1", {10, 0, 0}}})
                       .configuration({{"A", "A1"}, {"B", "B1"}})
                       .configuration({{"A", "A2"}, {"B", "B1"}})
                       .build();
  const auto issues = lint_design(d);
  EXPECT_TRUE(has_code(issues, "always-on-mode"));
}

TEST(Lint, ZeroAreaModeFlaggedUnlessNamedNone) {
  const Design flagged = DesignBuilder("x")
                             .module("A", {{"A1", {0, 0, 0}},
                                           {"A2", {20, 0, 0}}})
                             .configuration({{"A", "A1"}})
                             .configuration({{"A", "A2"}})
                             .build();
  EXPECT_TRUE(has_code(lint_design(flagged), "zero-area-mode"));

  const Design named = DesignBuilder("x")
                           .module("A", {{"None", {0, 0, 0}},
                                         {"A2", {20, 0, 0}}})
                           .configuration({{"A", "None"}})
                           .configuration({{"A", "A2"}})
                           .build();
  EXPECT_FALSE(has_code(lint_design(named), "zero-area-mode"));
}

TEST(Lint, DetectsDuplicateModes) {
  const Design d = DesignBuilder("x")
                       .module("A", {{"A1", {10, 1, 2}}, {"A2", {10, 1, 2}}})
                       .configuration({{"A", "A1"}})
                       .configuration({{"A", "A2"}})
                       .build();
  EXPECT_TRUE(has_code(lint_design(d), "duplicate-modes"));
}

TEST(Lint, DetectsOversizedMode) {
  const Design d = DesignBuilder("x")
                       .module("A", {{"A1", {100000, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  EXPECT_TRUE(has_code(lint_design(d), "oversized-mode"));
}

TEST(Lint, DetectsSingleConfiguration) {
  const Design d = DesignBuilder("x")
                       .module("A", {{"A1", {10, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  EXPECT_TRUE(has_code(lint_design(d), "single-config"));
}

TEST(Lint, CaseStudyFlagsOnlyTheDeadRecoveryMode) {
  // Table II's "None" recovery mode is unused by the eight configurations;
  // everything else should be clean of warnings except that dead mode.
  const Design d = synth::wireless_receiver_design();
  const auto issues = lint_design(d);
  EXPECT_TRUE(has_code(issues, "dead-mode"));
  for (const LintIssue& i : issues)
    if (i.severity == LintSeverity::Warning) {
      EXPECT_EQ(i.code, "dead-mode");
    }
}

TEST(Lint, RenderIncludesSeverityAndCode) {
  const Design d = DesignBuilder("x")
                       .module("A", {{"A1", {10, 0, 0}}, {"A2", {20, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  const std::string text = render_lint(lint_design(d));
  EXPECT_NE(text.find("warning[dead-mode]"), std::string::npos);
}

}  // namespace
}  // namespace prpart
