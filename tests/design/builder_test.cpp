#include "design/builder.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart {
namespace {

TEST(DesignBuilder, BuildsCompleteDesign) {
  const Design d = DesignBuilder("demo")
                       .static_base({10, 1, 0})
                       .module("A", {{"A1", {5, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  EXPECT_EQ(d.name(), "demo");
  EXPECT_EQ(d.static_base(), ResourceVec(10, 1, 0));
  EXPECT_EQ(d.modules().size(), 1u);
  EXPECT_EQ(d.configurations().size(), 1u);
}

TEST(DesignBuilder, AutoNamesConfigurations) {
  const Design d = DesignBuilder("demo")
                       .module("A", {{"A1", {5, 0, 0}}, {"A2", {6, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .configuration({{"A", "A2"}})
                       .build();
  EXPECT_EQ(d.configurations()[0].name, "Conf1");
  EXPECT_EQ(d.configurations()[1].name, "Conf2");
}

TEST(DesignBuilder, ExplicitConfigurationName) {
  const Design d = DesignBuilder("demo")
                       .module("A", {{"A1", {5, 0, 0}}})
                       .configuration("boot", {{"A", "A1"}})
                       .build();
  EXPECT_EQ(d.configurations()[0].name, "boot");
}

TEST(DesignBuilder, OmittedModulesAreAbsent) {
  const Design d = DesignBuilder("demo")
                       .module("A", {{"A1", {5, 0, 0}}})
                       .module("B", {{"B1", {5, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .configuration({{"B", "B1"}})
                       .build();
  EXPECT_EQ(d.configurations()[0].mode_of_module, (std::vector<std::uint32_t>{1, 0}));
  EXPECT_EQ(d.configurations()[1].mode_of_module, (std::vector<std::uint32_t>{0, 1}));
}

TEST(DesignBuilder, UnknownModuleThrows) {
  DesignBuilder b("demo");
  b.module("A", {{"A1", {5, 0, 0}}});
  EXPECT_THROW(b.configuration({{"Z", "A1"}}), DesignError);
}

TEST(DesignBuilder, UnknownModeThrows) {
  DesignBuilder b("demo");
  b.module("A", {{"A1", {5, 0, 0}}});
  EXPECT_THROW(b.configuration({{"A", "A9"}}), DesignError);
}

TEST(DesignBuilder, DuplicateModuleInConfigurationThrows) {
  DesignBuilder b("demo");
  b.module("A", {{"A1", {5, 0, 0}}, {"A2", {6, 0, 0}}});
  EXPECT_THROW(b.configuration({{"A", "A1"}, {"A", "A2"}}), DesignError);
}

TEST(DesignBuilder, BuildIsRepeatable) {
  DesignBuilder b("demo");
  b.module("A", {{"A1", {5, 0, 0}}, {"A2", {6, 0, 0}}});
  b.configuration({{"A", "A1"}});
  const Design d1 = b.build();
  b.configuration({{"A", "A2"}});
  const Design d2 = b.build();
  EXPECT_EQ(d1.configurations().size(), 1u);
  EXPECT_EQ(d2.configurations().size(), 2u);
}

}  // namespace
}  // namespace prpart
