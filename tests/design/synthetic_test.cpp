#include "design/synthetic.hpp"

#include <gtest/gtest.h>

namespace prpart {
namespace {

TEST(Synthetic, RespectsStructuralRanges) {
  SyntheticOptions opt;
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const SyntheticDesign s =
        generate_synthetic(rng, CircuitClass::Logic, opt);
    const Design& d = s.design;
    EXPECT_GE(d.modules().size(), opt.min_modules);
    EXPECT_LE(d.modules().size(), opt.max_modules);
    for (const Module& m : d.modules()) {
      EXPECT_GE(m.modes.size(), opt.min_modes);
      EXPECT_LE(m.modes.size(), opt.max_modes);
      for (const Mode& mode : m.modes) {
        EXPECT_GE(mode.area.clbs, opt.min_clbs);
        EXPECT_LE(mode.area.clbs, opt.max_clbs);
      }
    }
    EXPECT_EQ(d.static_base(), opt.static_base);
  }
}

TEST(Synthetic, EveryModeUsedAtLeastOnce) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const SyntheticDesign s =
        generate_synthetic(rng, CircuitClass::Memory);
    for (std::size_t m = 0; m < s.design.mode_count(); ++m)
      EXPECT_TRUE(s.design.mode_used(m))
          << "mode " << m << " unused in design " << i;
  }
}

TEST(Synthetic, MinConfigurationsPadsPastCoverage) {
  // min_configurations keeps sampling distinct configurations beyond the
  // paper's stop-at-full-coverage rule (the serve-scale bench population);
  // every mode is still used and configurations stay distinct.
  SyntheticOptions opt;
  opt.min_modules = 6;
  opt.max_modules = 8;
  opt.min_configurations = 96;
  Rng rng(4);
  const SyntheticDesign s =
      generate_synthetic(rng, CircuitClass::Logic, opt);
  EXPECT_GE(s.design.configurations().size(), 96u);
  for (std::size_t m = 0; m < s.design.mode_count(); ++m)
    EXPECT_TRUE(s.design.mode_used(m)) << "mode " << m;
  const auto& configs = s.design.configurations();
  for (std::size_t i = 0; i < configs.size(); ++i)
    for (std::size_t j = i + 1; j < configs.size(); ++j)
      EXPECT_NE(configs[i].mode_of_module, configs[j].mode_of_module);
}

TEST(Synthetic, MinConfigurationsStopsWhenSpaceExhausts) {
  // A tiny design cannot honour an outsized request: generation must
  // terminate after exhausting (a bounded sample of) the distinct space
  // rather than loop forever, and still cover every mode.
  SyntheticOptions opt;
  opt.min_modules = 2;
  opt.max_modules = 2;
  opt.min_modes = 2;
  opt.max_modes = 2;
  opt.min_configurations = 1000;  // distinct non-empty configs: at most 8
  Rng rng(5);
  const SyntheticDesign s =
      generate_synthetic(rng, CircuitClass::Logic, opt);
  EXPECT_LE(s.design.configurations().size(), 8u);
  for (std::size_t m = 0; m < s.design.mode_count(); ++m)
    EXPECT_TRUE(s.design.mode_used(m)) << "mode " << m;
}

TEST(Synthetic, ConfigurationsAreDistinct) {
  Rng rng(3);
  const SyntheticDesign s = generate_synthetic(rng, CircuitClass::Dsp);
  // Design validation would have thrown on duplicates; double-check here.
  const auto& configs = s.design.configurations();
  for (std::size_t i = 0; i < configs.size(); ++i)
    for (std::size_t j = i + 1; j < configs.size(); ++j)
      EXPECT_NE(configs[i].mode_of_module, configs[j].mode_of_module);
}

TEST(Synthetic, ClassesShapeSecondaryResources) {
  SyntheticOptions opt;
  opt.min_clbs = 2000;  // large modes make the class signal unambiguous
  opt.max_clbs = 4000;
  Rng rng_mem(4);
  Rng rng_logic(4);
  const SyntheticDesign mem =
      generate_synthetic(rng_mem, CircuitClass::Memory, opt);
  const SyntheticDesign logic =
      generate_synthetic(rng_logic, CircuitClass::Logic, opt);
  std::uint64_t mem_brams = 0, logic_brams = 0;
  std::uint64_t mem_modes = 0, logic_modes = 0;
  for (const Module& m : mem.design.modules())
    for (const Mode& mode : m.modes) {
      mem_brams += mode.area.brams;
      ++mem_modes;
    }
  for (const Module& m : logic.design.modules())
    for (const Mode& mode : m.modes) {
      logic_brams += mode.area.brams;
      ++logic_modes;
    }
  // Memory-intensive modes must carry clearly more BRAM on average.
  EXPECT_GT(mem_brams * logic_modes, 2 * logic_brams * mem_modes);
}

TEST(Synthetic, DspClassAlwaysHasDsps) {
  Rng rng(5);
  const SyntheticDesign s = generate_synthetic(rng, CircuitClass::Dsp);
  for (const Module& m : s.design.modules())
    for (const Mode& mode : m.modes) EXPECT_GE(mode.area.dsps, 1u);
}

TEST(Synthetic, SuiteIsDeterministic) {
  const auto a = generate_synthetic_suite(42, 8);
  const auto b = generate_synthetic_suite(42, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].circuit_class, b[i].circuit_class);
    EXPECT_EQ(a[i].design.mode_count(), b[i].design.mode_count());
    EXPECT_EQ(a[i].design.configurations().size(),
              b[i].design.configurations().size());
    EXPECT_EQ(a[i].design.largest_configuration_area(),
              b[i].design.largest_configuration_area());
  }
}

TEST(Synthetic, SuiteBalancesClasses) {
  const auto suite = generate_synthetic_suite(7, 16);
  std::size_t counts[4] = {0, 0, 0, 0};
  for (const SyntheticDesign& s : suite)
    ++counts[static_cast<std::size_t>(s.circuit_class)];
  for (std::size_t c : counts) EXPECT_EQ(c, 4u);
}

TEST(Synthetic, FamilyFeasibleByConstruction) {
  const auto suite = generate_synthetic_suite(11, 40);
  SyntheticOptions opt;
  for (const SyntheticDesign& s : suite) {
    const ResourceVec need =
        s.design.largest_configuration_area() + s.design.static_base();
    EXPECT_TRUE(need.fits_in(opt.family_capacity))
        << s.design.name() << " needs " << need.to_string();
  }
}

TEST(Synthetic, DifferentSeedsGiveDifferentSuites) {
  const auto a = generate_synthetic_suite(1, 4);
  const auto b = generate_synthetic_suite(2, 4);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].design.mode_count() != b[i].design.mode_count() ||
        a[i].design.full_static_area() != b[i].design.full_static_area())
      any_difference = true;
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace prpart
