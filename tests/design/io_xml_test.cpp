#include "design/io_xml.hpp"

#include <gtest/gtest.h>

#include "design/builder.hpp"
#include "synth/ip_library.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

const char* kSample = R"(<?xml version="1.0"?>
<design name="example">
  <static clbs="90" brams="8"/>
  <module name="A">
    <mode name="A1" clbs="100" dsps="2"/>
    <mode name="A2" clbs="250" brams="1" dsps="4"/>
  </module>
  <module name="B">
    <mode name="B1" clbs="300"/>
  </module>
  <configurations>
    <configuration name="c1">
      <use module="A" mode="A1"/>
      <use module="B" mode="B1"/>
    </configuration>
    <configuration name="c2">
      <use module="A" mode="A2"/>
    </configuration>
  </configurations>
</design>
)";

TEST(DesignXml, ParsesSampleDocument) {
  const Design d = design_from_xml(kSample);
  EXPECT_EQ(d.name(), "example");
  EXPECT_EQ(d.static_base(), ResourceVec(90, 8, 0));
  ASSERT_EQ(d.modules().size(), 2u);
  EXPECT_EQ(d.modules()[0].modes[0].area, ResourceVec(100, 0, 2));
  EXPECT_EQ(d.modules()[0].modes[1].area, ResourceVec(250, 1, 4));
  ASSERT_EQ(d.configurations().size(), 2u);
  EXPECT_EQ(d.configurations()[0].mode_of_module,
            (std::vector<std::uint32_t>{1, 1}));
  EXPECT_EQ(d.configurations()[1].mode_of_module,
            (std::vector<std::uint32_t>{2, 0}));
}

TEST(DesignXml, RoundTripsBuilderDesign) {
  const Design original = DesignBuilder("rt")
                              .static_base({10, 0, 1})
                              .module("X", {{"X1", {1, 2, 3}}, {"X2", {4, 5, 6}}})
                              .module("Y", {{"Y1", {7, 8, 9}}})
                              .configuration({{"X", "X1"}, {"Y", "Y1"}})
                              .configuration({{"X", "X2"}})
                              .build();
  const Design reparsed = design_from_xml(design_to_xml(original));
  EXPECT_EQ(reparsed.name(), original.name());
  EXPECT_EQ(reparsed.static_base(), original.static_base());
  ASSERT_EQ(reparsed.modules().size(), original.modules().size());
  for (std::size_t m = 0; m < original.modules().size(); ++m) {
    EXPECT_EQ(reparsed.modules()[m].name, original.modules()[m].name);
    ASSERT_EQ(reparsed.modules()[m].modes.size(),
              original.modules()[m].modes.size());
    for (std::size_t k = 0; k < original.modules()[m].modes.size(); ++k)
      EXPECT_EQ(reparsed.modules()[m].modes[k].area,
                original.modules()[m].modes[k].area);
  }
  ASSERT_EQ(reparsed.configurations().size(),
            original.configurations().size());
  for (std::size_t c = 0; c < original.configurations().size(); ++c)
    EXPECT_EQ(reparsed.configurations()[c].mode_of_module,
              original.configurations()[c].mode_of_module);
}

TEST(DesignXml, RoundTripsCaseStudy) {
  const Design original = synth::wireless_receiver_design();
  const Design reparsed = design_from_xml(design_to_xml(original));
  EXPECT_EQ(reparsed.mode_count(), original.mode_count());
  EXPECT_EQ(reparsed.configurations().size(),
            original.configurations().size());
  EXPECT_EQ(reparsed.largest_configuration_area(),
            original.largest_configuration_area());
  // Serialisation is a fixed point.
  EXPECT_EQ(design_to_xml(reparsed), design_to_xml(original));
}

TEST(DesignXml, RejectsWrongRoot) {
  EXPECT_THROW(design_from_xml("<notdesign/>"), ParseError);
}

TEST(DesignXml, RejectsUnknownModuleReference) {
  const char* doc = R"(<design>
    <module name="A"><mode name="A1" clbs="1"/></module>
    <configurations>
      <configuration><use module="Z" mode="A1"/></configuration>
    </configurations>
  </design>)";
  EXPECT_THROW(design_from_xml(doc), ParseError);
}

TEST(DesignXml, RejectsUnknownModeReference) {
  const char* doc = R"(<design>
    <module name="A"><mode name="A1" clbs="1"/></module>
    <configurations>
      <configuration><use module="A" mode="A9"/></configuration>
    </configurations>
  </design>)";
  EXPECT_THROW(design_from_xml(doc), ParseError);
}

TEST(DesignXml, RejectsDoubleAssignment) {
  const char* doc = R"(<design>
    <module name="A"><mode name="A1" clbs="1"/><mode name="A2" clbs="2"/></module>
    <configurations>
      <configuration>
        <use module="A" mode="A1"/>
        <use module="A" mode="A2"/>
      </configuration>
    </configurations>
  </design>)";
  EXPECT_THROW(design_from_xml(doc), ParseError);
}

TEST(DesignXml, MissingConfigurationsRejected) {
  EXPECT_THROW(
      design_from_xml(
          R"(<design><module name="A"><mode name="A1" clbs="1"/></module></design>)"),
      ParseError);
}

}  // namespace
}  // namespace prpart
