#include "synth/ip_library.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart::synth {
namespace {

TEST(IpLibrary, ContainsTable2Blocks) {
  const IpLibrary lib = IpLibrary::standard();
  // Spot-check Table II rows verbatim.
  EXPECT_EQ(lib.lookup("matched_filter.filter1").area, ResourceVec(818, 0, 28));
  EXPECT_EQ(lib.lookup("matched_filter.filter2").area, ResourceVec(500, 0, 34));
  EXPECT_EQ(lib.lookup("recovery.fine").area, ResourceVec(318, 1, 13));
  EXPECT_EQ(lib.lookup("recovery.none").area, ResourceVec(0, 0, 0));
  EXPECT_EQ(lib.lookup("decoder.turbo").area, ResourceVec(748, 15, 4));
  EXPECT_EQ(lib.lookup("video.mpeg4").area, ResourceVec(4700, 40, 65));
  EXPECT_EQ(lib.lookup("video.jpeg").area, ResourceVec(2780, 6, 9));
}

TEST(IpLibrary, LookupUnknownThrows) {
  const IpLibrary lib = IpLibrary::standard();
  EXPECT_FALSE(lib.contains("nonexistent"));
  EXPECT_THROW(lib.lookup("nonexistent"), DesignError);
}

TEST(CaseStudy, StructureMatchesPaper) {
  const Design d = wireless_receiver_design();
  ASSERT_EQ(d.modules().size(), 5u);
  EXPECT_EQ(d.modules()[0].name, "F");
  EXPECT_EQ(d.modules()[0].modes.size(), 2u);
  EXPECT_EQ(d.modules()[1].modes.size(), 4u);  // R1..R4 incl. "None"
  EXPECT_EQ(d.modules()[2].modes.size(), 2u);
  EXPECT_EQ(d.modules()[3].modes.size(), 3u);
  EXPECT_EQ(d.modules()[4].modes.size(), 3u);
  EXPECT_EQ(d.configurations().size(), 8u);
  EXPECT_EQ(d.mode_count(), 14u);
}

TEST(CaseStudy, FullyStaticAreaMatchesTable2Sum) {
  const Design d = wireless_receiver_design();
  // Sum of every Table II row: 15751 CLBs, 83 BRAMs, 204 DSPs. (The paper's
  // Table IV quotes 15053/68/202 for the static scheme; its own column sums
  // differ slightly -- see EXPERIMENTS.md.)
  EXPECT_EQ(d.full_static_area(), ResourceVec(15751, 83, 204));
}

TEST(CaseStudy, StaticImplementationExceedsBudget) {
  // The paper's headline observation: full static does not fit the 6800/50/
  // 150 budget.
  const Design d = wireless_receiver_design();
  EXPECT_FALSE(d.full_static_area().fits_in(wireless_receiver_budget()));
}

TEST(CaseStudy, LargestConfigurationFitsBudget) {
  // ...but a single-region implementation (the lower bound) does fit.
  const Design d = wireless_receiver_design();
  const ResourceVec lower = d.largest_configuration_area();
  EXPECT_TRUE(lower.fits_in(wireless_receiver_budget()))
      << lower.to_string();
}

TEST(CaseStudy, ModifiedVariantHasFiveConfigurations) {
  const Design d = wireless_receiver_modified_design();
  EXPECT_EQ(d.configurations().size(), 5u);
  EXPECT_EQ(d.modules().size(), 5u);
}

TEST(CaseStudy, R4NeverUsed) {
  // Recovery mode 4 ("None", zero area) exists in Table II but none of the
  // eight §V configurations use it; it must be flagged as dead.
  const Design d = wireless_receiver_design();
  const std::size_t r4 = d.global_mode_id(1, 4);
  EXPECT_FALSE(d.mode_used(r4));
}

}  // namespace
}  // namespace prpart::synth
