#include "synth/estimator.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart::synth {
namespace {

TEST(Estimator, ZeroSpecIsZero) {
  EXPECT_EQ(estimate({}), ResourceVec(0, 0, 0));
}

TEST(Estimator, LutBoundLogic) {
  BehavioralSpec spec;
  spec.luts = 400;
  spec.ffs = 100;
  EstimatorOptions opt;
  opt.packing_efficiency = 1.0;
  // 400 LUTs / 4 per CLB = 100 CLBs (FF demand is smaller).
  EXPECT_EQ(estimate(spec, opt).clbs, 100u);
}

TEST(Estimator, FfBoundLogic) {
  BehavioralSpec spec;
  spec.luts = 100;
  spec.ffs = 400;
  EstimatorOptions opt;
  opt.packing_efficiency = 1.0;
  EXPECT_EQ(estimate(spec, opt).clbs, 100u);
}

TEST(Estimator, PackingEfficiencyInflates) {
  BehavioralSpec spec;
  spec.luts = 400;
  EstimatorOptions tight;
  tight.packing_efficiency = 1.0;
  EstimatorOptions loose;
  loose.packing_efficiency = 0.5;
  EXPECT_EQ(estimate(spec, loose).clbs, 2 * estimate(spec, tight).clbs);
}

TEST(Estimator, MemoryMapsToBrams) {
  BehavioralSpec spec;
  spec.mem_kbits = 100;
  EXPECT_EQ(estimate(spec).brams, 3u);  // ceil(100/36)
}

TEST(Estimator, MultipliersMapToDsps) {
  BehavioralSpec spec;
  spec.mult18s = 7;
  EXPECT_EQ(estimate(spec).dsps, 7u);
}

TEST(Estimator, DistributedMemoryUsesClbs) {
  BehavioralSpec spec;
  spec.dist_mem_bits = 640;
  EstimatorOptions opt;
  opt.packing_efficiency = 1.0;
  EXPECT_EQ(estimate(spec, opt).clbs, 10u);  // 640 / 64 bits per CLB
}

TEST(Estimator, MonotoneInEveryInput) {
  BehavioralSpec base;
  base.luts = 100;
  base.ffs = 50;
  base.mult18s = 3;
  base.mem_kbits = 40;
  const ResourceVec r0 = estimate(base);
  for (int field = 0; field < 4; ++field) {
    BehavioralSpec grown = base;
    switch (field) {
      case 0: grown.luts += 100; break;
      case 1: grown.ffs += 200; break;
      case 2: grown.mult18s += 2; break;
      case 3: grown.mem_kbits += 40; break;
    }
    const ResourceVec r1 = estimate(grown);
    EXPECT_GE(r1.clbs, r0.clbs);
    EXPECT_GE(r1.brams, r0.brams);
    EXPECT_GE(r1.dsps, r0.dsps);
  }
}

TEST(Estimator, RejectsBadOptions) {
  EstimatorOptions opt;
  opt.packing_efficiency = 0.0;
  EXPECT_THROW(estimate({}, opt), InternalError);
  opt.packing_efficiency = 1.5;
  EXPECT_THROW(estimate({}, opt), InternalError);
}

}  // namespace
}  // namespace prpart::synth
