// Steady-state allocation contract (DESIGN.md §4e): a serve worker that
// keeps its WorkerPool and EvalScratch across jobs must reach a state where
// a whole job — pool fan-out, batched kernel evaluation, result reduction —
// performs ZERO heap allocations and spawns zero threads. The first job may
// allocate (it sizes every buffer); the second identical job may not.
//
// The check counts in a replaced global operator new, exactly like the
// warm-kernel bench (bench/algo_micro.cpp), so it observes every std::
// container allocation with no instrumentation in the code under test.
// Because of the replaced allocator this binary must stay OUT of the
// sanitizer CI legs (tsan/asan interpose their own allocators).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/clustering.hpp"
#include "core/eval_kernel.hpp"
#include "core/scheme.hpp"
#include "core/schemes.hpp"
#include "design/synthetic.hpp"
#include "util/parallel_for.hpp"

static std::atomic<std::uint64_t> g_heap_allocations{0};

// GCC pairs new/delete expressions with the *default* operator new it can
// see through inlining and flags the std::free below as mismatched; with
// the whole global new/delete family replaced here the pairing is in fact
// consistent (new -> malloc, delete -> free).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

namespace prpart {
namespace {

// One shard = one design's work unit inside a job: a batch of schemes
// evaluated through the shard's own scratch. The server shape is one scratch
// per job worker; sharding by design here keeps pool bodies data-parallel
// while every buffer is still reused across jobs.
struct Shard {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  EvalContext context;
  std::vector<PartitionScheme> schemes;
  std::vector<const PartitionScheme*> ptrs;
  std::vector<SchemeEvaluation> evals;
  EvalScratch scratch;
  std::uint64_t frames = 0;

  explicit Shard(Design d)
      : design(std::move(d)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix)),
        context(design, matrix, partitions) {
    // Valid schemes only: the steady-state contract covers the serve hot
    // path, and the invalid path legitimately builds diagnosis strings.
    schemes.push_back(make_modular_scheme(design, matrix, partitions));
    schemes.push_back(make_static_scheme(design, matrix, partitions));
    for (const PartitionScheme& s : schemes) ptrs.push_back(&s);
    evals.resize(schemes.size());
  }
};

// Shards are pinned behind unique_ptr: EvalContext is neither copyable nor
// movable, and `ptrs` aliases `schemes`.
struct JobState {
  std::vector<std::unique_ptr<Shard>>* shards;
  const ResourceVec* budget;
};

// One serve-style job: fan the shards across the pool, batch-evaluate each
// shard's schemes, reduce into per-shard frame totals. The pool.run body
// captures a single reference so the std::function built at the call site
// stays inside its small-buffer storage (no allocation per job).
void run_job(WorkerPool& pool, JobState& st) {
  pool.run(st.shards->size(), [&st](std::size_t i) {
    Shard& sh = *(*st.shards)[i];
    sh.context.evaluate_batch_into(sh.ptrs.data(), sh.ptrs.size(), *st.budget,
                                   sh.scratch, sh.evals.data());
    std::uint64_t frames = 0;
    for (const SchemeEvaluation& e : sh.evals) frames += e.total_frames;
    sh.frames = frames;
  });
}

TEST(SteadyStateAlloc, SecondServeJobAllocatesNothingAndSpawnsNothing) {
  const auto suite = generate_synthetic_suite(/*seed=*/424242, /*count=*/6);
  const ResourceVec budget{30720, 456, 384};
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(suite.size());
  for (const SyntheticDesign& s : suite)
    shards.push_back(std::make_unique<Shard>(s.design));
  JobState st{&shards, &budget};

  WorkerPool pool(4);
  const std::uint64_t spawned = pool.threads_spawned();

  // Job 1 warms every buffer: scratch, evaluation outputs, pool machinery.
  run_job(pool, st);
  std::vector<std::uint64_t> job1_frames;
  for (const auto& sh : shards) job1_frames.push_back(sh->frames);

  // Job 2 is the steady state: identical work, zero heap traffic, zero
  // thread spawns.
  const std::uint64_t allocs_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  run_job(pool, st);
  const std::uint64_t job2_allocs =
      g_heap_allocations.load(std::memory_order_relaxed) - allocs_before;

  EXPECT_EQ(job2_allocs, 0u)
      << "steady-state serve job hit the heap " << job2_allocs << " time(s)";
  EXPECT_EQ(pool.threads_spawned(), spawned);

  // The job really ran: results match job 1 and are non-trivial.
  ASSERT_EQ(job1_frames.size(), shards.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i]->frames, job1_frames[i]) << "shard " << i;
    total += shards[i]->frames;
  }
  EXPECT_GT(total, 0u);
}

TEST(SteadyStateAlloc, WarmSingleEvaluationAllocatesNothing) {
  // The single-call form of the same contract (the search inner loop):
  // after one sizing call, evaluate_into through the active tier is
  // allocation-free with reused scratch and output.
  const auto suite = generate_synthetic_suite(/*seed=*/31, /*count=*/1);
  ASSERT_FALSE(suite.empty());
  Shard shard(suite.front().design);
  const ResourceVec budget{30720, 456, 384};
  SchemeEvaluation eval;
  shard.context.evaluate_into(shard.schemes.front(), budget, shard.scratch,
                              eval);  // size once
  const std::uint64_t before =
      g_heap_allocations.load(std::memory_order_relaxed);
  for (int k = 0; k < 16; ++k)
    shard.context.evaluate_into(shard.schemes.front(), budget, shard.scratch,
                                eval);
  EXPECT_EQ(g_heap_allocations.load(std::memory_order_relaxed) - before, 0u);
}

}  // namespace
}  // namespace prpart
