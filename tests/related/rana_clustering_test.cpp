#include "related/rana_clustering.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/partitioner.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

TEST(CommunicationGraph, SymmetricStorage) {
  CommunicationGraph g(4);
  g.set(0, 3, 2.5);
  EXPECT_DOUBLE_EQ(g.at(0, 3), 2.5);
  EXPECT_DOUBLE_EQ(g.at(3, 0), 2.5);
  EXPECT_DOUBLE_EQ(g.at(1, 2), 0.0);
}

TEST(CommunicationGraph, Validation) {
  CommunicationGraph g(3);
  EXPECT_THROW(g.set(0, 0, 1.0), InternalError);
  EXPECT_THROW(g.set(0, 5, 1.0), InternalError);
  EXPECT_THROW(g.set(0, 1, -1.0), InternalError);
  EXPECT_THROW(g.at(4, 0), InternalError);
}

TEST(CommunicationClustering, MergesHeaviestPairsFirst) {
  // 0-1 heavy, 2-3 medium, everything else light: with 2 target regions
  // the grouping must be {0,1} and {2,3}.
  CommunicationGraph g(4);
  g.set(0, 1, 10.0);
  g.set(2, 3, 5.0);
  g.set(0, 2, 0.1);
  g.set(1, 3, 0.1);
  const ModuleGrouping mg = communication_clustering(g, 2);
  ASSERT_EQ(mg.groups.size(), 2u);
  std::vector<std::vector<std::size_t>> sorted = mg.groups;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(sorted[1], (std::vector<std::size_t>{2, 3}));
}

TEST(CommunicationClustering, SingleRegionGroupsEverything) {
  CommunicationGraph g(3);
  g.set(0, 1, 1.0);
  const ModuleGrouping mg = communication_clustering(g, 1);
  ASSERT_EQ(mg.groups.size(), 1u);
  EXPECT_EQ(mg.groups[0].size(), 3u);
}

TEST(CommunicationClustering, TargetEqualsModulesIsIdentity) {
  CommunicationGraph g(3);
  const ModuleGrouping mg = communication_clustering(g, 3);
  EXPECT_EQ(mg.groups.size(), 3u);
}

TEST(CommunicationClustering, IntraBandwidthGrowsWithMerging) {
  Rng rng(3);
  const CommunicationGraph g = CommunicationGraph::random(rng, 6, 0.8);
  double prev = -1.0;
  for (std::size_t regions = 6; regions >= 1; --regions) {
    const double intra =
        intra_group_bandwidth(g, communication_clustering(g, regions));
    EXPECT_GE(intra, prev);
    prev = intra;
  }
}

TEST(EvaluateModuleGrouping, IdentityGroupingEqualsModularScheme) {
  // One module per group is exactly the paper's one-module-per-region
  // baseline; both evaluations must agree.
  const Design d = paper_example();
  const ResourceVec budget{100000, 100, 100};
  ModuleGrouping identity;
  identity.groups = {{0}, {1}, {2}};
  const SchemeEvaluation ours = evaluate_module_grouping(d, identity, budget);

  const PartitionerResult r = partition_design(d, budget);
  EXPECT_EQ(ours.total_frames, r.modular.eval.total_frames);
  EXPECT_EQ(ours.worst_frames, r.modular.eval.worst_frames);
  EXPECT_EQ(ours.pr_resources, r.modular.eval.pr_resources);
}

TEST(EvaluateModuleGrouping, GroupedModulesReconfigureTogether) {
  // Grouping A and B: any configuration pair where either module changes
  // mode reconfigures the shared region.
  const Design d = paper_example();
  ModuleGrouping mg;
  mg.groups = {{0, 1}, {2}};
  const SchemeEvaluation e =
      evaluate_module_grouping(d, mg, {100000, 100, 100});
  ASSERT_EQ(e.regions.size(), 2u);
  // Five configurations with distinct (A, B) mode pairs except confs 1/5
  // share... compute: signatures are (A3,B2),(A1,B1),(A3,B2),(A1,B2),
  // (A2,B2): conf1 and conf3 share a signature.
  EXPECT_EQ(e.regions[0].reconfig_pairs, 10u - 1u);
}

TEST(EvaluateModuleGrouping, RegionAreaIsLargestCombination) {
  const Design d = paper_example();
  ModuleGrouping mg;
  mg.groups = {{0, 1, 2}};  // everything in one region
  const SchemeEvaluation e =
      evaluate_module_grouping(d, mg, {100000, 100, 100});
  ASSERT_EQ(e.regions.size(), 1u);
  // Largest configuration: A1+B1+C1 = (650, 3, 0) vs others; element-wise
  // max over configs.
  EXPECT_EQ(e.regions[0].raw, d.largest_configuration_area());
}

TEST(EvaluateModuleGrouping, RejectsBadGroupings) {
  const Design d = paper_example();
  ModuleGrouping missing;
  missing.groups = {{0}, {1}};  // module 2 missing
  EXPECT_THROW(evaluate_module_grouping(d, missing, {100, 1, 1}),
               InternalError);
  ModuleGrouping dup;
  dup.groups = {{0, 1}, {1, 2}};
  EXPECT_THROW(evaluate_module_grouping(d, dup, {100, 1, 1}), InternalError);
}

TEST(EvaluateModuleGrouping, StaleRuleForAbsentGroups) {
  const Design d = testing::one_off_modules();
  // Group the two configurations' module sets separately: regions are
  // inactive in the "other" configuration, so no transitions reconfigure.
  ModuleGrouping mg;
  mg.groups = {{0, 1}, {2, 3, 4}};
  const SchemeEvaluation e =
      evaluate_module_grouping(d, mg, {100000, 100, 100});
  EXPECT_EQ(e.total_frames, 0u);
}

}  // namespace
}  // namespace prpart
