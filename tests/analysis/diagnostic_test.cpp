#include "analysis/diagnostic.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace prpart::analysis {
namespace {

TEST(DiagnosticTest, SeverityNames) {
  EXPECT_STREQ(to_string(Severity::Error), "error");
  EXPECT_STREQ(to_string(Severity::Warning), "warning");
  EXPECT_STREQ(to_string(Severity::Info), "info");
}

TEST(DiagnosticTest, SortPutsErrorsFirstAndIsStable) {
  std::vector<Diagnostic> diags = {
      {Severity::Info, "i1", "first info", "", {}},
      {Severity::Warning, "w1", "first warning", "", {}},
      {Severity::Error, "e1", "first error", "", {}},
      {Severity::Warning, "w2", "second warning", "", {}},
      {Severity::Error, "e2", "second error", "", {}},
  };
  sort_by_severity(diags);
  ASSERT_EQ(diags.size(), 5u);
  EXPECT_EQ(diags[0].code, "e1");
  EXPECT_EQ(diags[1].code, "e2");
  EXPECT_EQ(diags[2].code, "w1");
  EXPECT_EQ(diags[3].code, "w2");
  EXPECT_EQ(diags[4].code, "i1");
}

TEST(DiagnosticTest, RenderWithFileAndSpanIsCompilerStyle) {
  const std::vector<Diagnostic> diags = {
      {Severity::Error, "unknown-mode-ref", "no such mode",
       "declare the mode or fix the reference", {12, 5}},
  };
  EXPECT_EQ(render_text(diags, "design.xml"),
            "design.xml:12:5: error[unknown-mode-ref]: no such mode\n"
            "  fix: declare the mode or fix the reference\n");
}

TEST(DiagnosticTest, RenderOmitsUnknownPrefixParts) {
  const std::vector<Diagnostic> no_span = {
      {Severity::Warning, "dead-mode", "never used", "", {}},
  };
  EXPECT_EQ(render_text(no_span), "warning[dead-mode]: never used\n");
  EXPECT_EQ(render_text(no_span, "design.xml"),
            "design.xml: warning[dead-mode]: never used\n");

  const std::vector<Diagnostic> with_span = {
      {Severity::Info, "single-config", "one configuration", "", {3, 1}},
  };
  EXPECT_EQ(render_text(with_span),
            "3:1: info[single-config]: one configuration\n");
}

TEST(DiagnosticTest, RenderConcatenatesInOrder) {
  const std::vector<Diagnostic> diags = {
      {Severity::Error, "a", "one", "", {}},
      {Severity::Warning, "b", "two", "", {}},
  };
  EXPECT_EQ(render_text(diags), "error[a]: one\nwarning[b]: two\n");
}

}  // namespace
}  // namespace prpart::analysis
