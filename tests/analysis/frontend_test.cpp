#include "analysis/frontend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace prpart::analysis {
namespace {

const Diagnostic* find_code(const SourceAnalysis& sa, const std::string& code) {
  for (const Diagnostic& d : sa.result.diagnostics)
    if (d.code == code) return &d;
  return nullptr;
}

std::size_t count_errors(const SourceAnalysis& sa) {
  return sa.result.count(Severity::Error);
}

/// Every error-severity diagnostic must be traceable to the input.
void expect_error_spans_known(const SourceAnalysis& sa) {
  for (const Diagnostic& d : sa.result.diagnostics) {
    if (d.severity == Severity::Error) {
      EXPECT_TRUE(d.span.known()) << d.code << ": " << d.message;
    }
  }
}

TEST(FrontendTest, MalformedXmlIsAnErrorDiagnosticWithASpan) {
  const SourceAnalysis sa = analyze_design_source("<design>\n  <oops\n");
  ASSERT_TRUE(sa.has_errors());
  EXPECT_FALSE(sa.parsed.has_value());
  const Diagnostic* d = find_code(sa, "xml-error");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("XML parse error"), std::string::npos);
  expect_error_spans_known(sa);
}

TEST(FrontendTest, WrongRootElementIsAnError) {
  const SourceAnalysis sa = analyze_design_source("<designs>\n</designs>\n");
  const Diagnostic* d = find_code(sa, "xml-error");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("expected <design>"), std::string::npos);
  EXPECT_EQ(d->span.line, 1u);
}

TEST(FrontendTest, ModuleWithoutANameIsMissingAttribute) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module>\n"
      "    <mode name=\"M1\" clbs=\"10\"/>\n"
      "  </module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"M1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "missing-attribute");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 2u);
  EXPECT_EQ(d->fixit, "add name=\"...\"");
  // The nameless module cannot be referenced either.
  EXPECT_NE(find_code(sa, "unknown-module-ref"), nullptr);
  expect_error_spans_known(sa);
}

TEST(FrontendTest, NonNumericResourceIsBadAttribute) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\">\n"
      "    <mode name=\"M1\" clbs=\"lots\"/>\n"
      "  </module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"M1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "bad-attribute");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 3u);
  EXPECT_NE(d->message.find("clbs=\"lots\""), std::string::npos);
}

TEST(FrontendTest, ResourceBeyond32BitsIsBadAttribute) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <static clbs=\"99999999999\"/>\n"
      "  <module name=\"A\"><mode name=\"M1\" clbs=\"10\"/></module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"M1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "bad-attribute");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 2u);
}

TEST(FrontendTest, DuplicateModuleNameIsAnError) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\"><mode name=\"M1\" clbs=\"10\"/></module>\n"
      "  <module name=\"A\"><mode name=\"M2\" clbs=\"20\"/></module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"M1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "duplicate-module");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 3u);
}

TEST(FrontendTest, DuplicateModeNameIsAnError) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\">\n"
      "    <mode name=\"M1\" clbs=\"10\"/>\n"
      "    <mode name=\"M1\" clbs=\"20\"/>\n"
      "  </module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"M1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "duplicate-mode");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 4u);
}

TEST(FrontendTest, ModuleWithoutModesIsAnError) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\"><mode name=\"M1\" clbs=\"10\"/></module>\n"
      "  <module name=\"B\"></module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"M1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "empty-module");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 3u);
}

TEST(FrontendTest, DesignWithoutModulesIsAnError) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"M1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  EXPECT_NE(find_code(sa, "no-modules"), nullptr);
  EXPECT_NE(find_code(sa, "unknown-module-ref"), nullptr);
}

TEST(FrontendTest, DesignWithoutConfigurationsIsAnError) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\"><mode name=\"M1\" clbs=\"10\"/></module>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "no-configurations");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->span.known());
}

TEST(FrontendTest, ConfigurationWithoutUsesIsAnError) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\"><mode name=\"M1\" clbs=\"10\"/></module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"M1\"/></configuration>\n"
      "    <configuration name=\"Idle\"></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "empty-configuration");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 5u);
  EXPECT_NE(d->message.find("'Idle'"), std::string::npos);
}

TEST(FrontendTest, UnknownModuleReferenceIsAnError) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\"><mode name=\"M1\" clbs=\"10\"/></module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"Z\" mode=\"M1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "unknown-module-ref");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 4u);
  EXPECT_NE(d->message.find("'Z'"), std::string::npos);
}

TEST(FrontendTest, UnknownModeReferenceIsAnError) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\"><mode name=\"M1\" clbs=\"10\"/></module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"M9\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "unknown-mode-ref");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 4u);
  EXPECT_EQ(d->fixit, "declare the mode or fix the reference");
}

TEST(FrontendTest, ModuleAssignedTwiceInOneConfigurationIsAnError) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\">\n"
      "    <mode name=\"M1\" clbs=\"10\"/>\n"
      "    <mode name=\"M2\" clbs=\"20\"/>\n"
      "  </module>\n"
      "  <configurations>\n"
      "    <configuration>\n"
      "      <use module=\"A\" mode=\"M1\"/>\n"
      "      <use module=\"A\" mode=\"M2\"/>\n"
      "    </configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "duplicate-module-use");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 9u);
}

TEST(FrontendTest, DuplicateConfigurationsAreAnError) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\"><mode name=\"M1\" clbs=\"10\"/></module>\n"
      "  <configurations>\n"
      "    <configuration name=\"C1\"><use module=\"A\" mode=\"M1\"/>"
      "</configuration>\n"
      "    <configuration name=\"C2\"><use module=\"A\" mode=\"M1\"/>"
      "</configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  const Diagnostic* d = find_code(sa, "duplicate-config");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 5u);
  EXPECT_NE(d->message.find("'C2'"), std::string::npos);
  EXPECT_NE(d->message.find("'C1'"), std::string::npos);
}

TEST(FrontendTest, TheWalkIsTolerantAndCollectsEveryError) {
  // One document, three independent problems: all reported in one pass.
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\"><mode name=\"M1\" clbs=\"bad\"/></module>\n"
      "  <module name=\"B\"></module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"Z\" mode=\"M1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  EXPECT_FALSE(sa.parsed.has_value());
  EXPECT_GE(count_errors(sa), 3u);
  EXPECT_NE(find_code(sa, "bad-attribute"), nullptr);
  EXPECT_NE(find_code(sa, "empty-module"), nullptr);
  EXPECT_NE(find_code(sa, "unknown-module-ref"), nullptr);
  expect_error_spans_known(sa);
}

TEST(FrontendTest, CleanSourceBuildsTheDesignAndRunsSemanticChecks) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <static clbs=\"90\" brams=\"8\"/>\n"
      "  <module name=\"A\">\n"
      "    <mode name=\"A1\" clbs=\"100\"/>\n"
      "    <mode name=\"A2\" clbs=\"200\"/>\n"
      "  </module>\n"
      "  <module name=\"B\"><mode name=\"B1\" clbs=\"50\"/></module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"A1\"/>"
      "<use module=\"B\" mode=\"B1\"/></configuration>\n"
      "    <configuration><use module=\"A\" mode=\"A1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  const SourceAnalysis sa = analyze_design_source(text);
  EXPECT_FALSE(sa.has_errors());
  ASSERT_TRUE(sa.parsed.has_value());
  EXPECT_EQ(sa.parsed->design.name(), "t");

  // Semantic findings point back into the source: the dead mode A2 is
  // declared on line 5.
  const Diagnostic* dead = find_code(sa, "dead-mode");
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->span.line, 5u);
}

TEST(FrontendTest, ExplicitBudgetReachesTheSemanticChecks) {
  const std::string text =
      "<design name=\"t\">\n"
      "  <module name=\"A\"><mode name=\"A1\" clbs=\"5000\"/></module>\n"
      "  <configurations>\n"
      "    <configuration><use module=\"A\" mode=\"A1\"/></configuration>\n"
      "  </configurations>\n"
      "</design>\n";
  AnalysisOptions options;
  options.budget = ResourceVec{100, 0, 0};
  const SourceAnalysis sa = analyze_design_source(text, options);
  ASSERT_TRUE(sa.result.proof.has_value());
  EXPECT_EQ(sa.result.proof->target, "budget");
  EXPECT_NE(find_code(sa, "infeasible"), nullptr);
}

}  // namespace
}  // namespace prpart::analysis
