#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/analyzer.hpp"
#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "device/device.hpp"
#include "device/tiles.hpp"

namespace prpart::analysis {
namespace {

/// The soundness property of the infeasibility proof: when the analyzer
/// proves a design cannot fit a budget, the allocation search must agree
/// (and vice versa). Both sides reduce to the §IV-C single-region lower
/// bound, so the equivalence is exact, not merely one-sided.
class InfeasibilityPropertyTest : public ::testing::Test {
 protected:
  void check(const Design& design, const ResourceVec& budget) {
    const DeviceLibrary library = DeviceLibrary::virtex5();
    const auto proof = prove_infeasible(design, budget, library, "budget");

    PartitionerOptions options;
    options.search.max_move_evaluations = 10000;  // feasibility is effort-free
    const PartitionerResult result = partition_design(design, budget, options);

    EXPECT_EQ(proof.has_value(), !result.feasible)
        << design.name() << " on " << budget.to_string();
    if (proof) {
      EXPECT_FALSE(proof->lower_bound.fits_in(budget));
      EXPECT_GT(proof->required, proof->available);
    }
  }
};

TEST_F(InfeasibilityPropertyTest, ProofMatchesTheSearchOnSyntheticDesigns) {
  const std::vector<SyntheticDesign> suite = generate_synthetic_suite(42, 8);
  for (const SyntheticDesign& s : suite) {
    const ResourceVec bound =
        tiles_for(s.design.largest_configuration_area()).resources() +
        s.design.static_base();

    // Exactly the bound: feasible on both sides.
    check(s.design, bound);

    // One unit short in any non-zero component: infeasible on both sides.
    if (bound.clbs > 0)
      check(s.design, {bound.clbs - 1, bound.brams, bound.dsps});
    if (bound.brams > 0)
      check(s.design, {bound.clbs, bound.brams - 1, bound.dsps});
    if (bound.dsps > 0)
      check(s.design, {bound.clbs, bound.brams, bound.dsps - 1});

    // A generous budget stays feasible.
    check(s.design, bound + ResourceVec{1000, 100, 100});
  }
}

TEST_F(InfeasibilityPropertyTest, AnalyzerErrorImpliesPartitionInfeasible) {
  // Drive analyze_design end to end: whenever it emits the `infeasible`
  // error, partition_design must return feasible == false.
  const std::vector<SyntheticDesign> suite = generate_synthetic_suite(7, 4);
  const std::vector<ResourceVec> budgets = {
      {100, 1, 1}, {2000, 20, 20}, {30720, 456, 384}};
  for (const SyntheticDesign& s : suite) {
    for (const ResourceVec& budget : budgets) {
      AnalysisOptions options;
      options.budget = budget;
      const AnalysisResult analysis = analyze_design(s.design, options);

      PartitionerOptions popts;
      popts.search.max_move_evaluations = 10000;
      const PartitionerResult result =
          partition_design(s.design, budget, popts);

      if (analysis.proof.has_value())
        EXPECT_FALSE(result.feasible)
            << s.design.name() << " on " << budget.to_string();
      else
        EXPECT_TRUE(result.feasible)
            << s.design.name() << " on " << budget.to_string();
    }
  }
}

}  // namespace
}  // namespace prpart::analysis
