#include "analysis/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "design/builder.hpp"
#include "device/tiles.hpp"
#include "synth/ip_library.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace prpart::analysis {
namespace {

bool has_code(const std::vector<Diagnostic>& diagnostics,
              const std::string& code) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& find_code(const std::vector<Diagnostic>& diagnostics,
                            const std::string& code) {
  for (const Diagnostic& d : diagnostics)
    if (d.code == code) return d;
  throw std::runtime_error("diagnostic not found: " + code);
}

Design clean_design() {
  return DesignBuilder("clean")
      .static_base({90, 8, 0})
      .module("A", {{"A1", {100, 0, 0}}, {"A2", {200, 0, 4}}})
      .module("B", {{"B1", {300, 2, 0}}, {"B2", {50, 0, 0}}})
      .configuration({{"A", "A1"}, {"B", "B1"}})
      .configuration({{"A", "A2"}, {"B", "B2"}})
      .build();
}

TEST(AnalyzerTest, CleanDesignHasNoDiagnostics) {
  const AnalysisResult result = analyze_design(clean_design());
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_FALSE(result.proof.has_value());
  EXPECT_FALSE(result.has_errors());
}

TEST(AnalyzerTest, DetectsDeadMode) {
  const Design d = DesignBuilder("dead")
                       .module("A", {{"A1", {100, 0, 0}}, {"A2", {200, 0, 0}}})
                       .module("B", {{"B1", {50, 0, 0}}})
                       .configuration({{"A", "A1"}, {"B", "B1"}})
                       .configuration({{"A", "A1"}})
                       .build();
  const AnalysisResult result = analyze_design(d);
  ASSERT_TRUE(has_code(result.diagnostics, "dead-mode"));
  const Diagnostic& diag = find_code(result.diagnostics, "dead-mode");
  EXPECT_EQ(diag.severity, Severity::Warning);
  EXPECT_NE(diag.message.find("A2"), std::string::npos);
  EXPECT_FALSE(diag.fixit.empty());
}

TEST(AnalyzerTest, DetectsUnusedModule) {
  const Design d = DesignBuilder("unused")
                       .module("A", {{"A1", {100, 0, 0}}})
                       .module("B", {{"B1", {50, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  const AnalysisResult result = analyze_design(d);
  ASSERT_TRUE(has_code(result.diagnostics, "unused-module"));
  EXPECT_NE(find_code(result.diagnostics, "unused-module").message.find("B"),
            std::string::npos);
  // Its modes are dead too.
  EXPECT_TRUE(has_code(result.diagnostics, "dead-mode"));
}

TEST(AnalyzerTest, DetectsAlwaysOnMode) {
  const Design d = DesignBuilder("always")
                       .module("A", {{"A1", {100, 0, 0}}})
                       .module("B", {{"B1", {50, 0, 0}}, {"B2", {60, 0, 0}}})
                       .configuration({{"A", "A1"}, {"B", "B1"}})
                       .configuration({{"A", "A1"}, {"B", "B2"}})
                       .build();
  const AnalysisResult result = analyze_design(d);
  ASSERT_TRUE(has_code(result.diagnostics, "always-on-mode"));
  const Diagnostic& diag = find_code(result.diagnostics, "always-on-mode");
  EXPECT_EQ(diag.severity, Severity::Info);
  EXPECT_NE(diag.fixit.find("<static>"), std::string::npos);
}

TEST(AnalyzerTest, ZeroAreaModeFlaggedUnlessNamedNone) {
  const Design flagged = DesignBuilder("zero")
                             .module("A", {{"Empty", {0, 0, 0}}})
                             .module("B", {{"B1", {50, 0, 0}}})
                             .configuration({{"A", "Empty"}, {"B", "B1"}})
                             .build();
  EXPECT_TRUE(has_code(analyze_design(flagged).diagnostics, "zero-area-mode"));

  const Design tolerated = DesignBuilder("zero")
                               .module("A", {{"Bypass", {0, 0, 0}}})
                               .module("B", {{"B1", {50, 0, 0}}})
                               .configuration({{"A", "Bypass"}, {"B", "B1"}})
                               .build();
  EXPECT_FALSE(
      has_code(analyze_design(tolerated).diagnostics, "zero-area-mode"));
}

TEST(AnalyzerTest, DetectsDuplicateModes) {
  const Design d = DesignBuilder("dup")
                       .module("A", {{"A1", {100, 4, 0}}, {"A2", {100, 4, 0}}})
                       .configuration({{"A", "A1"}})
                       .configuration({{"A", "A2"}})
                       .build();
  const AnalysisResult result = analyze_design(d);
  ASSERT_TRUE(has_code(result.diagnostics, "duplicate-modes"));
  EXPECT_EQ(find_code(result.diagnostics, "duplicate-modes").severity,
            Severity::Info);
}

TEST(AnalyzerTest, OversizedModeWarnsAgainstTheLibrary) {
  const Design d = DesignBuilder("huge")
                       .module("A", {{"A1", {100000, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  const AnalysisResult result = analyze_design(d);
  ASSERT_TRUE(has_code(result.diagnostics, "oversized-mode"));
  EXPECT_EQ(find_code(result.diagnostics, "oversized-mode").severity,
            Severity::Warning);
  // No device in the family can hold it, so the library-wide proof fires
  // with no fitting witness.
  ASSERT_TRUE(result.proof.has_value());
  EXPECT_TRUE(result.proof->smallest_fitting_device.empty());
  EXPECT_TRUE(has_code(result.diagnostics, "infeasible"));
}

TEST(AnalyzerTest, OversizedModeIsAnErrorAgainstAnExplicitTarget) {
  const Design d = DesignBuilder("huge")
                       .module("A", {{"A1", {100000, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  AnalysisOptions options;
  options.budget = ResourceVec{4000, 32, 32};
  const AnalysisResult result = analyze_design(d, options);
  ASSERT_TRUE(has_code(result.diagnostics, "oversized-mode"));
  EXPECT_EQ(find_code(result.diagnostics, "oversized-mode").severity,
            Severity::Error);
  EXPECT_TRUE(result.has_errors());
}

TEST(AnalyzerTest, DeadOversizedModeDoesNotBlockAnExplicitTarget) {
  // The oversized mode never appears in a configuration, so the design is
  // still implementable: warn, do not error.
  const Design d = DesignBuilder("dead-huge")
                       .module("A", {{"A1", {100, 0, 0}}, {"A2", {100000, 0, 0}}})
                       .module("B", {{"B1", {50, 0, 0}}})
                       .configuration({{"A", "A1"}, {"B", "B1"}})
                       .build();
  AnalysisOptions options;
  options.budget = ResourceVec{4000, 32, 32};
  const AnalysisResult result = analyze_design(d, options);
  EXPECT_FALSE(result.has_errors());
  EXPECT_TRUE(has_code(result.diagnostics, "oversized-mode"));
  EXPECT_EQ(find_code(result.diagnostics, "oversized-mode").severity,
            Severity::Warning);
}

TEST(AnalyzerTest, DetectsSingleConfiguration) {
  const Design d = DesignBuilder("single")
                       .module("A", {{"A1", {100, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  const AnalysisResult result = analyze_design(d);
  ASSERT_TRUE(has_code(result.diagnostics, "single-config"));
  EXPECT_EQ(find_code(result.diagnostics, "single-config").severity,
            Severity::Info);
}

TEST(AnalyzerTest, DetectsSubsumedConfiguration) {
  const Design d = DesignBuilder("subsumed")
                       .module("A", {{"A1", {100, 0, 0}}})
                       .module("B", {{"B1", {50, 0, 0}}})
                       .configuration("Full", {{"A", "A1"}, {"B", "B1"}})
                       .configuration("Partial", {{"A", "A1"}})
                       .build();
  const AnalysisResult result = analyze_design(d);
  ASSERT_TRUE(has_code(result.diagnostics, "subsumed-config"));
  const Diagnostic& diag = find_code(result.diagnostics, "subsumed-config");
  EXPECT_EQ(diag.severity, Severity::Warning);
  EXPECT_NE(diag.message.find("'Partial'"), std::string::npos);
  EXPECT_NE(diag.message.find("'Full'"), std::string::npos);
}

TEST(AnalyzerTest, SuggestsMergingModulesThatNeverCoOccur) {
  const Design d = DesignBuilder("merge")
                       .module("A", {{"A1", {100, 0, 0}}})
                       .module("B", {{"B1", {50, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .configuration({{"B", "B1"}})
                       .build();
  const AnalysisResult result = analyze_design(d);
  ASSERT_TRUE(has_code(result.diagnostics, "merge-candidate"));
  const Diagnostic& diag = find_code(result.diagnostics, "merge-candidate");
  EXPECT_EQ(diag.severity, Severity::Info);
  EXPECT_NE(diag.message.find("'A'"), std::string::npos);
  EXPECT_NE(diag.message.find("'B'"), std::string::npos);
}

TEST(AnalyzerTest, MergeSuggestionNotEmittedWhenModulesCoOccur) {
  EXPECT_FALSE(
      has_code(analyze_design(clean_design()).diagnostics, "merge-candidate"));
}

TEST(AnalyzerTest, InfeasibilityProofCarriesTheWitness) {
  const Design d = clean_design();
  AnalysisOptions options;
  options.budget = ResourceVec{100, 1, 1};
  const AnalysisResult result = analyze_design(d, options);

  ASSERT_TRUE(result.proof.has_value());
  const InfeasibilityProof& proof = *result.proof;
  EXPECT_EQ(proof.target, "budget");
  EXPECT_EQ(proof.raw_lower_bound, d.largest_configuration_area());
  EXPECT_EQ(proof.lower_bound,
            tiles_for(d.largest_configuration_area()).resources() +
                d.static_base());
  EXPECT_EQ(proof.capacity, (ResourceVec{100, 1, 1}));
  EXPECT_EQ(proof.binding, "clbs");
  EXPECT_EQ(proof.required, proof.lower_bound.clbs);
  EXPECT_EQ(proof.available, 100u);
  // The clean design fits comfortably on the smallest Virtex-5 part.
  EXPECT_EQ(proof.smallest_fitting_device, "XC5VLX20T");

  ASSERT_TRUE(has_code(result.diagnostics, "infeasible"));
  const Diagnostic& diag = find_code(result.diagnostics, "infeasible");
  EXPECT_EQ(diag.severity, Severity::Error);
  EXPECT_NE(diag.fixit.find("XC5VLX20T"), std::string::npos);
  // Errors sort first.
  EXPECT_EQ(result.diagnostics.front().severity, Severity::Error);
}

TEST(AnalyzerTest, FeasibleDesignAgainstNamedDeviceHasNoProof) {
  AnalysisOptions options;
  options.device = "XC5VFX200T";
  const AnalysisResult result = analyze_design(clean_design(), options);
  EXPECT_FALSE(result.proof.has_value());
  EXPECT_FALSE(has_code(result.diagnostics, "infeasible"));
}

TEST(AnalyzerTest, UnknownDeviceThrowsAUsageError) {
  AnalysisOptions options;
  options.device = "XC7NOPE";
  EXPECT_THROW(analyze_design(clean_design(), options), DeviceError);
}

TEST(AnalyzerTest, CaseStudyFlagsOnlyTheDeadRecoveryMode) {
  const Design receiver = synth::wireless_receiver_design();
  const AnalysisResult result = analyze_design(receiver);
  EXPECT_FALSE(result.has_errors());
  std::size_t dead = 0;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.severity != Severity::Warning) continue;
    EXPECT_EQ(d.code, "dead-mode") << d.message;
    ++dead;
  }
  EXPECT_EQ(dead, 1u);
  EXPECT_NE(find_code(result.diagnostics, "dead-mode").message.find("R4"),
            std::string::npos);
}

TEST(AnalyzerTest, RenderIncludesSeverityAndCode) {
  const AnalysisResult result =
      analyze_design(synth::wireless_receiver_design());
  const std::string text = render_text(result.diagnostics);
  EXPECT_NE(text.find("warning[dead-mode]"), std::string::npos);
}

TEST(AnalyzerTest, JsonReportsFeasibleTrueOnACleanDesign) {
  const json::Value v = analysis_json(analyze_design(clean_design()));
  EXPECT_TRUE(v.at("feasible").as_bool());
  EXPECT_EQ(v.at("errors").as_u64(), 0u);
  EXPECT_TRUE(v.at("diagnostics").items().empty());
}

TEST(AnalyzerTest, JsonCarriesTheProofWhenInfeasible) {
  AnalysisOptions options;
  // Every mode fits this budget individually, so the only error is the
  // lower-bound proof (the bound is {490, 12, 8}).
  options.budget = ResourceVec{450, 12, 8};
  const json::Value v =
      analysis_json(analyze_design(clean_design(), options));
  EXPECT_FALSE(v.at("feasible").as_bool());
  EXPECT_GE(v.at("errors").as_u64(), 1u);
  const json::Value& proof = v.at("proof");
  EXPECT_EQ(proof.at("target").as_string(), "budget");
  EXPECT_EQ(proof.at("binding").as_string(), "clbs");
  EXPECT_EQ(proof.at("smallest_fitting_device").as_string(), "XC5VLX20T");
  const json::Value& first = v.at("diagnostics").items().front();
  EXPECT_EQ(first.at("severity").as_string(), "error");
  EXPECT_EQ(first.at("code").as_string(), "infeasible");
}

}  // namespace
}  // namespace prpart::analysis
