#include "bitstream/bitstream.hpp"

#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "device/tiles.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

struct Fixture {
  Design design = paper_example();
  PartitionerResult result = partition_design(design, {900, 8, 16});
};

TEST(Bitstream, SizesAreFrameAccurate) {
  Fixture f;
  const auto set =
      generate_bitstreams(f.design, f.result.base_partitions,
                          f.result.proposed.scheme, f.result.proposed.eval);
  ASSERT_FALSE(set.empty());
  for (const Bitstream& b : set) {
    EXPECT_EQ(b.words.size(),
              bitstream_layout::kHeaderWords + b.frames * arch::kWordsPerFrame);
    EXPECT_EQ(b.frames, f.result.proposed.eval.regions[b.region].frames);
    EXPECT_EQ(b.bytes(), b.words.size() * 4);
  }
}

TEST(Bitstream, OnePerRegionMember) {
  Fixture f;
  const auto set =
      generate_bitstreams(f.design, f.result.base_partitions,
                          f.result.proposed.scheme, f.result.proposed.eval);
  std::size_t members = 0;
  for (const Region& r : f.result.proposed.scheme.regions)
    members += r.members.size();
  EXPECT_EQ(set.size(), members);
}

TEST(Bitstream, HeaderFieldsAreCorrect) {
  Fixture f;
  const auto set =
      generate_bitstreams(f.design, f.result.base_partitions,
                          f.result.proposed.scheme, f.result.proposed.eval);
  for (const Bitstream& b : set) {
    EXPECT_EQ(b.words[0], bitstream_layout::kSyncWord);
    EXPECT_EQ(b.words[1], b.region);
    EXPECT_EQ(b.words[2], b.partition);
    EXPECT_EQ(b.words[3], b.frames);
    EXPECT_NO_THROW(validate_bitstream(b));
  }
}

TEST(Bitstream, GenerationIsDeterministic) {
  Fixture f;
  const auto a =
      generate_bitstreams(f.design, f.result.base_partitions,
                          f.result.proposed.scheme, f.result.proposed.eval);
  const auto b =
      generate_bitstreams(f.design, f.result.base_partitions,
                          f.result.proposed.scheme, f.result.proposed.eval);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].words, b[i].words);
}

TEST(Bitstream, ValidationCatchesCorruption) {
  Fixture f;
  auto set =
      generate_bitstreams(f.design, f.result.base_partitions,
                          f.result.proposed.scheme, f.result.proposed.eval);
  Bitstream* victim = nullptr;
  for (Bitstream& b : set)
    if (b.frames > 0) victim = &b;
  ASSERT_NE(victim, nullptr);

  Bitstream bad_sync = *victim;
  bad_sync.words[0] = 0;
  EXPECT_THROW(validate_bitstream(bad_sync), ParseError);

  Bitstream bad_count = *victim;
  bad_count.words[3] += 1;
  EXPECT_THROW(validate_bitstream(bad_count), ParseError);

  Bitstream bad_payload = *victim;
  bad_payload.words.back() ^= 0xff;
  EXPECT_THROW(validate_bitstream(bad_payload), ParseError);

  Bitstream truncated = *victim;
  truncated.words.pop_back();
  EXPECT_THROW(validate_bitstream(truncated), ParseError);
}

TEST(Bitstream, TotalBytesSums) {
  Fixture f;
  const auto set =
      generate_bitstreams(f.design, f.result.base_partitions,
                          f.result.proposed.scheme, f.result.proposed.eval);
  std::uint64_t expected = 0;
  for (const Bitstream& b : set) expected += b.bytes();
  EXPECT_EQ(total_bytes(set), expected);
}

TEST(Bitstream, NamesIdentifyRegionAndPartition) {
  Fixture f;
  const auto set =
      generate_bitstreams(f.design, f.result.base_partitions,
                          f.result.proposed.scheme, f.result.proposed.eval);
  for (const Bitstream& b : set) {
    EXPECT_NE(b.name.find("prr"), std::string::npos);
    EXPECT_NE(b.name.find(f.design.name()), std::string::npos);
  }
}

}  // namespace
}  // namespace prpart
