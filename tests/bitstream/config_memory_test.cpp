#include "bitstream/config_memory.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/status.hpp"

namespace prpart {
namespace {

Device test_device() { return Device("test", {1600, 16, 16}, 2); }

TEST(FrameAddress, PackUnpackRoundTrips) {
  for (std::uint32_t row : {0u, 1u, 7u})
    for (std::uint32_t major : {0u, 5u, 400u})
      for (std::uint32_t minor : {0u, 17u, 35u}) {
        const FrameAddress a{row, major, minor};
        EXPECT_EQ(FrameAddress::unpack(a.pack()), a);
      }
}

TEST(FrameMap, ColumnFramesFollowBlockType) {
  const Device d = test_device();
  const FrameMap map(d);
  for (std::uint32_t c = 0; c < d.columns().size(); ++c) {
    switch (d.columns()[c]) {
      case BlockType::Clb: EXPECT_EQ(map.frames_in_column(c), 36u); break;
      case BlockType::Bram: EXPECT_EQ(map.frames_in_column(c), 30u); break;
      case BlockType::Dsp: EXPECT_EQ(map.frames_in_column(c), 28u); break;
    }
  }
}

TEST(FrameMap, TotalFramesIsRowsTimesColumnSum) {
  const Device d = test_device();
  const FrameMap map(d);
  std::uint64_t per_row = 0;
  for (std::uint32_t c = 0; c < d.columns().size(); ++c)
    per_row += map.frames_in_column(c);
  EXPECT_EQ(map.total_frames(), per_row * d.rows());
}

TEST(FrameMap, LinearIndexIsABijection) {
  const Device d = test_device();
  const FrameMap map(d);
  std::set<std::uint64_t> seen;
  for (std::uint32_t row = 0; row < d.rows(); ++row)
    for (std::uint32_t major = 0; major < d.columns().size(); ++major)
      for (std::uint32_t minor = 0; minor < map.frames_in_column(major);
           ++minor) {
        const std::uint64_t idx = map.linear_index({row, major, minor});
        EXPECT_LT(idx, map.total_frames());
        EXPECT_TRUE(seen.insert(idx).second);
      }
  EXPECT_EQ(seen.size(), map.total_frames());
}

TEST(FrameMap, RejectsInvalidAddresses) {
  const Device d = test_device();
  const FrameMap map(d);
  EXPECT_FALSE(map.valid({d.rows(), 0, 0}));
  EXPECT_FALSE(map.valid({0, static_cast<std::uint32_t>(d.columns().size()), 0}));
  EXPECT_FALSE(map.valid({0, 0, 36}));
  EXPECT_THROW(map.linear_index({d.rows(), 0, 0}), InternalError);
}

TEST(ConfigMemory, WriteReadRoundTrip) {
  const Device d = test_device();
  ConfigMemory mem(d);
  std::vector<std::uint32_t> frame(41);
  for (std::size_t i = 0; i < frame.size(); ++i)
    frame[i] = static_cast<std::uint32_t>(i * 7 + 1);
  const FrameAddress a{1, 3, 5};
  mem.write_frame(a, frame);
  const auto read = mem.read_frame(a);
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), read.begin()));
  EXPECT_EQ(mem.frame_writes(), 1u);
}

TEST(ConfigMemory, RejectsWrongFrameSize) {
  ConfigMemory mem(test_device());
  std::vector<std::uint32_t> tiny(3);
  EXPECT_THROW(mem.write_frame({0, 0, 0}, tiny), InternalError);
}

TEST(PlacedBitstream, CoversExactlyTheRectangleFrames) {
  const Device d = test_device();
  const Floorplanner fp(d);
  const FloorplanResult plan = fp.place({{4, 1, 1}, {3, 0, 0}});
  ASSERT_TRUE(plan.success);

  ConfigMemory mem(d);
  const auto before = mem.snapshot();
  const PlacedBitstream bs(d, plan.placements[0], 42, "prr1");
  bs.apply(mem);
  const auto after = mem.snapshot();

  // Every changed word must belong to a frame of the placement.
  const FrameMap& map = mem.frame_map();
  std::set<std::uint64_t> covered;
  for (const FrameAddress& a : frames_of_placement(d, plan.placements[0]))
    covered.insert(map.linear_index(a));
  for (std::size_t w = 0; w < after.size(); ++w) {
    if (before[w] == after[w]) continue;
    EXPECT_TRUE(covered.count(w / 41))
        << "word " << w << " outside the region changed";
  }
  EXPECT_EQ(mem.frame_writes(), bs.frames());
  EXPECT_EQ(bs.frames(), covered.size());
}

TEST(PlacedBitstream, DisjointPlacementsTouchDisjointFrames) {
  const Device d = test_device();
  const Floorplanner fp(d);
  const FloorplanResult plan = fp.place({{6, 1, 0}, {5, 0, 1}});
  ASSERT_TRUE(plan.success);
  const FrameMap map(d);
  std::set<std::uint64_t> first;
  for (const FrameAddress& a : frames_of_placement(d, plan.placements[0]))
    first.insert(map.linear_index(a));
  for (const FrameAddress& a : frames_of_placement(d, plan.placements[1]))
    EXPECT_EQ(first.count(map.linear_index(a)), 0u);
}

TEST(PlacedBitstream, PlacementProvidesAtLeastRequiredFrames) {
  // The rectangle may contain more tiles than the resource requirement
  // (column mix), but never fewer frames than the tile-rounded estimate of
  // the tiles it actually provides.
  const Device d = test_device();
  const Floorplanner fp(d);
  const TileCount need{4, 1, 1};
  const FloorplanResult plan = fp.place({need});
  ASSERT_TRUE(plan.success);
  const PlacedBitstream bs(d, plan.placements[0], 1, "prr1");
  EXPECT_GE(bs.frames(), need.frames());
}

TEST(PlacedBitstream, DeterministicForSeed) {
  const Device d = test_device();
  const Floorplanner fp(d);
  const FloorplanResult plan = fp.place({{2, 0, 0}});
  ASSERT_TRUE(plan.success);
  const PlacedBitstream a(d, plan.placements[0], 9, "x");
  const PlacedBitstream b(d, plan.placements[0], 9, "x");
  EXPECT_EQ(a.words(), b.words());
  const PlacedBitstream c(d, plan.placements[0], 10, "x");
  EXPECT_NE(a.words(), c.words());
}

TEST(PlacedBitstream, ApplyRejectsCorruption) {
  const Device d = test_device();
  const Floorplanner fp(d);
  // 41 CLB tiles cannot fit one row (40 CLB columns), so the rectangle is
  // two rows tall and its second-row frame addresses are invalid below.
  const FloorplanResult plan = fp.place({{41, 0, 0}});
  ASSERT_TRUE(plan.success);
  PlacedBitstream bs(d, plan.placements[0], 7, "x");
  // Words are immutable by design, so corruption is modelled by applying a
  // bitstream built for one device to the memory of a smaller one: its
  // frame addresses are out of range there.
  const Device tiny("tiny", {400, 4, 8}, 1);
  ConfigMemory tiny_mem(tiny);
  bool threw = false;
  try {
    bs.apply(tiny_mem);  // frame addresses out of range for `tiny`
  } catch (const ParseError&) {
    threw = true;
  } catch (const InternalError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace prpart
