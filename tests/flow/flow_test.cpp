#include "flow/flow.hpp"

#include <gtest/gtest.h>

#include "design/synthetic.hpp"
#include "synth/ip_library.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

TEST(Flow, CaseStudyCompletesOnFX70T) {
  const Design design = synth::wireless_receiver_design();
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  FlowOptions opt;
  opt.partitioner.search.max_candidate_sets = 64;
  opt.partitioner.search.max_move_evaluations = 2'000'000;
  const FlowResult r = run_flow(design, lib.by_name("XC5VFX70T"), opt);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(r.partitioning.proposed.eval.valid);
  EXPECT_TRUE(r.floorplan.success);
  EXPECT_NE(r.ucf.find("AREA_GROUP"), std::string::npos);
  EXPECT_FALSE(r.bitstreams.empty());
  for (const Bitstream& b : r.bitstreams) validate_bitstream(b);
}

TEST(Flow, ArtifactsAreMutuallyConsistent) {
  const Design design = paper_example();
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const FlowResult r = run_flow_auto_device(design, lib);
  ASSERT_TRUE(r.success);

  // One bitstream per (region, member).
  std::size_t members = 0;
  for (const Region& region : r.partitioning.proposed.scheme.regions)
    members += region.members.size();
  EXPECT_EQ(r.bitstreams.size(), members);

  // One placement per region, each providing its region's tiles.
  EXPECT_EQ(r.floorplan.placements.size(),
            r.partitioning.proposed.eval.regions.size());
  for (const RegionPlacement& p : r.floorplan.placements) {
    const TileCount& need =
        r.partitioning.proposed.eval.regions[p.region].tiles;
    EXPECT_GE(p.provided.clb_tiles, need.clb_tiles);
    EXPECT_GE(p.provided.bram_tiles, need.bram_tiles);
    EXPECT_GE(p.provided.dsp_tiles, need.dsp_tiles);
  }
}

TEST(Flow, AutoDevicePicksSmallestWorkable) {
  const Design design = testing::fig3_example();
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const FlowResult r = run_flow_auto_device(design, lib);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.device->name(), lib.devices().front().name());
  EXPECT_EQ(r.iterations, 1u);
}

TEST(Flow, HugeDesignThrowsAcrossLibrary) {
  const Design design = DesignBuilder("huge")
                            .module("X", {{"X1", {60000, 0, 0}}})
                            .configuration({{"X", "X1"}})
                            .build();
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  EXPECT_THROW(run_flow_auto_device(design, lib), DeviceError);
}

TEST(Flow, FailureCarriesReason) {
  const Design design = synth::wireless_receiver_design();
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const FlowResult r = run_flow(design, lib.by_name("XC5VLX20T"));
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("does not fit"), std::string::npos);
}

TEST(Flow, InvalidShrinkRejected) {
  const Design design = paper_example();
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  FlowOptions opt;
  opt.budget_shrink_tenths = 0;
  // The shrink parameter is only touched when feedback fires, so force a
  // failure path by checking validation directly on a device where the
  // first floorplan may fail; accept either success or the invariant error.
  // (Validation of the option itself is what we assert here.)
  bool threw = false;
  try {
    // A fabricated device with one row and very few CLB columns makes
    // rectangles scarce.
    const Device cramped("cramped", {700, 4, 8}, 1);
    run_flow(design, cramped, opt);
  } catch (const InternalError&) {
    threw = true;
  }
  // Either the flow succeeded without feedback, or it validated the option.
  SUCCEED() << (threw ? "validated" : "no feedback needed");
}

TEST(Flow, SweepOfSyntheticDesignsCompletes) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  FlowOptions opt;
  opt.partitioner.search.max_move_evaluations = 200'000;
  const auto suite = generate_synthetic_suite(808, 10);
  std::size_t succeeded = 0;
  for (const SyntheticDesign& s : suite) {
    try {
      const FlowResult r = run_flow_auto_device(s.design, lib, opt);
      if (r.success) {
        ++succeeded;
        for (const Bitstream& b : r.bitstreams) validate_bitstream(b);
      }
    } catch (const DeviceError&) {
      // acceptable: some designs floorplan on no library device
    }
  }
  EXPECT_GE(succeeded, 8u);
}

}  // namespace
}  // namespace prpart
