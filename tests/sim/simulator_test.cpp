#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/partitioner.hpp"
#include "reconfig/markov.hpp"
#include "reconfig/prefetch.hpp"
#include "tests/core/example_designs.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace prpart::sim {
namespace {

/// Paper running example partitioned on the budget the §IV walkthrough uses.
struct SimFixture : ::testing::Test {
  SimFixture()
      : design(testing::paper_example()),
        result(partition_design(design, {900, 8, 16})) {}

  const PartitionScheme& scheme() const { return result.proposed.scheme; }
  const SchemeEvaluation& eval() const { return result.proposed.eval; }

  Design design;
  PartitionerResult result;
};

bool same_result(const SimulationResult& a, const SimulationResult& b) {
  return a.transitions == b.transitions && a.frames_loaded == b.frames_loaded &&
         a.region_loads == b.region_loads &&
         a.prefetched_frames == b.prefetched_frames &&
         a.useful_prefetches == b.useful_prefetches &&
         a.wasted_prefetches == b.wasted_prefetches &&
         a.total_latency_ns == b.total_latency_ns &&
         a.p50_latency_ns == b.p50_latency_ns &&
         a.p95_latency_ns == b.p95_latency_ns &&
         a.p99_latency_ns == b.p99_latency_ns &&
         a.max_latency_ns == b.max_latency_ns &&
         a.makespan_ns == b.makespan_ns &&
         a.transitions_per_second == b.transitions_per_second &&
         a.latency_counts == b.latency_counts;
}

TEST_F(SimFixture, ClosedLoopLatencyIsTheClosedFormIcapCost) {
  // Without prefetch and with closed-loop arrivals the port never queues, so
  // every served latency must be exactly reconfiguration_ns(frames(i, j)) —
  // the headline property of ISSUE satellites (the kernel's frame counts fed
  // through the ICAP model, nothing else).
  const std::size_t n = design.configurations().size();
  const TransitionTrace trace = uniform_pair_trace(n);
  const SimulationOptions options;
  const SimulationResult r = simulate_scheme(design, scheme(), eval(), trace, options);

  const auto frames = transition_frame_matrix(eval(), n);
  std::set<std::uint64_t> closed_form;
  std::uint64_t expected_total = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) {
        closed_form.insert(options.icap.reconfiguration_ns(frames[i][j]));
        expected_total += options.icap.reconfiguration_ns(frames[i][j]);
      }
  ASSERT_EQ(r.transitions, trace.transitions());
  EXPECT_EQ(r.total_latency_ns, expected_total);
  std::uint64_t counted = 0;
  for (const auto& [latency, count] : r.latency_counts) {
    EXPECT_TRUE(closed_form.count(latency))
        << latency << " ns is not a closed-form ICAP cost";
    counted += count;
  }
  EXPECT_EQ(counted, r.transitions);
}

TEST_F(SimFixture, PercentilesAreNearestRankReadsOfTheDistribution) {
  const TransitionTrace trace = uniform_pair_trace(design.configurations().size());
  const SimulationResult r = simulate_scheme(design, scheme(), eval(), trace);
  EXPECT_LE(r.p50_latency_ns, r.p95_latency_ns);
  EXPECT_LE(r.p95_latency_ns, r.p99_latency_ns);
  EXPECT_LE(r.p99_latency_ns, r.max_latency_ns);
  ASSERT_FALSE(r.latency_counts.empty());
  EXPECT_EQ(r.max_latency_ns, r.latency_counts.back().first);
}

TEST_F(SimFixture, OpenLoopArrivalsAddQueueingDelay) {
  const TransitionTrace trace = uniform_pair_trace(design.configurations().size());
  SimulationOptions closed;
  const SimulationResult base = simulate_scheme(design, scheme(), eval(), trace, closed);

  // A 1 ns arrival period floods the port: every request after the first
  // queues behind its predecessors, so latencies can only grow.
  SimulationOptions flooded;
  flooded.inter_arrival_ns = 1;
  const SimulationResult q = simulate_scheme(design, scheme(), eval(), trace, flooded);
  EXPECT_EQ(q.transitions, base.transitions);
  EXPECT_EQ(q.frames_loaded, base.frames_loaded);  // same work...
  EXPECT_GT(q.total_latency_ns, base.total_latency_ns);  // ...more waiting
  EXPECT_GE(q.max_latency_ns, base.max_latency_ns);
}

TEST_F(SimFixture, PrefetchRunMatchesTheControllerItWraps) {
  const std::size_t n = design.configurations().size();
  const MarkovChain chain = MarkovChain::uniform(n);
  Rng rng(11);
  const TransitionTrace trace = markov_trace(chain, rng, 400);

  SimulationOptions options;
  options.prefetch = true;
  options.predictor = &chain;
  const SimulationResult r = simulate_scheme(design, scheme(), eval(), trace, options);

  // Replay the same trace through the controller directly: the simulator
  // must report exactly its accounting (reconfig-seam coverage).
  PrefetchingController controller(design, scheme(), eval(), chain,
                                   options.icap, options.idle_frames_budget);
  controller.boot(trace.configs.front());
  std::uint64_t stall_frames = 0;
  for (std::size_t k = 1; k < trace.configs.size(); ++k)
    stall_frames += controller.transition(trace.configs[k]);
  const PrefetchStats& ps = controller.stats();

  EXPECT_EQ(r.transitions, ps.transitions);
  EXPECT_EQ(r.frames_loaded, stall_frames);
  EXPECT_EQ(r.frames_loaded, ps.stall_frames);
  EXPECT_EQ(r.region_loads, ps.stall_loads);
  EXPECT_EQ(r.prefetched_frames, ps.prefetched_frames);
  EXPECT_EQ(r.useful_prefetches, ps.useful_prefetches);
  EXPECT_EQ(r.wasted_prefetches, ps.wasted_prefetches);
  EXPECT_EQ(r.max_latency_ns,
            options.icap.reconfiguration_ns(ps.worst_stall_frames));
}

TEST_F(SimFixture, PrefetchNeverLoadsMoreStallFramesThanMemoryless) {
  const std::size_t n = design.configurations().size();
  const MarkovChain chain = MarkovChain::uniform(n);
  Rng rng(3);
  const TransitionTrace trace = markov_trace(chain, rng, 1000);

  const SimulationResult plain = simulate_scheme(design, scheme(), eval(), trace);
  SimulationOptions options;
  options.prefetch = true;
  options.predictor = &chain;
  const SimulationResult pf = simulate_scheme(design, scheme(), eval(), trace, options);
  EXPECT_LE(pf.frames_loaded, plain.frames_loaded);
  EXPECT_LE(pf.total_latency_ns, plain.total_latency_ns);
}

TEST_F(SimFixture, ResultsAreByteIdenticalAcrossThreadCounts) {
  const std::size_t n = design.configurations().size();
  const MarkovChain chain = MarkovChain::uniform(n);
  Rng rng(5);
  const TransitionTrace trace = markov_trace(chain, rng, 2000);

  // Fan several schemes out: the proposal plus the paper's baselines.
  std::vector<SchemeRef> refs = {
      {&result.proposed.scheme, &result.proposed.eval},
      {&result.modular.scheme, &result.modular.eval},
      {&result.single_region.scheme, &result.single_region.eval}};

  const auto one = simulate_schemes(design, refs, trace, {}, 1);
  const auto four = simulate_schemes(design, refs, trace, {}, 4);
  const auto sixteen = simulate_schemes(design, refs, trace, {}, 16);
  const auto rerun = simulate_schemes(design, refs, trace, {}, 1);
  ASSERT_EQ(one.size(), refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    EXPECT_TRUE(same_result(one[i], four[i])) << "scheme " << i;
    EXPECT_TRUE(same_result(one[i], sixteen[i])) << "scheme " << i;
    EXPECT_TRUE(same_result(one[i], rerun[i])) << "scheme " << i;
  }
}

TEST_F(SimFixture, SingleRegionReloadsEveryTransition) {
  // One region holding everything: every transition reloads it, so
  // region_loads == transitions and frames are transitions * region frames.
  const SchemeEvaluation& sr = result.single_region.eval;
  ASSERT_TRUE(sr.valid);
  const std::size_t n = design.configurations().size();
  const TransitionTrace trace = uniform_pair_trace(n);
  const SimulationResult r = simulate_scheme(
      design, result.single_region.scheme, sr, trace);
  EXPECT_EQ(r.region_loads, r.transitions);
  EXPECT_EQ(r.frames_loaded, r.transitions * sr.regions.at(0).frames);
}

TEST_F(SimFixture, RejectsMalformedInputs) {
  const TransitionTrace good = uniform_pair_trace(design.configurations().size());

  SchemeEvaluation invalid = eval();
  invalid.valid = false;
  EXPECT_THROW(simulate_scheme(design, scheme(), invalid, good), Error);

  TransitionTrace tiny;
  tiny.configs = {0};
  EXPECT_THROW(simulate_scheme(design, scheme(), eval(), tiny), Error);

  TransitionTrace out_of_range;
  out_of_range.configs = {0, 99};
  EXPECT_THROW(simulate_scheme(design, scheme(), eval(), out_of_range), Error);

  SimulationOptions prefetch_without_predictor;
  prefetch_without_predictor.prefetch = true;
  EXPECT_THROW(
      simulate_scheme(design, scheme(), eval(), good, prefetch_without_predictor),
      Error);
}

}  // namespace
}  // namespace prpart::sim
