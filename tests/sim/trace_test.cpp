#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace prpart::sim {
namespace {

using analysis::Severity;

// ---------------------------------------------------------------------------
// uniform_pair_trace: the Eulerian all-pairs circuit behind Eq. 10.

TEST(UniformPairTrace, CoversEveryOrderedPairExactlyOnce) {
  for (std::size_t n = 2; n <= 6; ++n) {
    const TransitionTrace trace = uniform_pair_trace(n);
    ASSERT_EQ(trace.configs.size(), n * (n - 1) + 1) << "n=" << n;
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (std::size_t k = 1; k < trace.configs.size(); ++k) {
      const auto from = trace.configs[k - 1];
      const auto to = trace.configs[k];
      ASSERT_LT(from, n);
      ASSERT_LT(to, n);
      ASSERT_NE(from, to) << "self-transition at step " << k;
      ASSERT_TRUE(seen.insert({from, to}).second)
          << "pair (" << from << "," << to << ") repeated, n=" << n;
    }
    // n(n-1) distinct ordered pairs = all of them.
    EXPECT_EQ(seen.size(), n * (n - 1));
    // A circuit returns to its start.
    EXPECT_EQ(trace.configs.front(), trace.configs.back());
  }
}

TEST(UniformPairTrace, IsDeterministic) {
  EXPECT_EQ(uniform_pair_trace(5).configs, uniform_pair_trace(5).configs);
}

TEST(UniformPairTrace, RejectsDegenerateStateCounts) {
  EXPECT_THROW(uniform_pair_trace(0), Error);
  EXPECT_THROW(uniform_pair_trace(1), Error);
}

// ---------------------------------------------------------------------------
// markov_trace: seeded sampling from the environment chain.

TEST(MarkovTrace, SameSeedReplaysSameWorkload) {
  const MarkovChain chain = MarkovChain::uniform(4);
  Rng a(42), b(42), c(43);
  const TransitionTrace ta = markov_trace(chain, a, 500);
  const TransitionTrace tb = markov_trace(chain, b, 500);
  const TransitionTrace tc = markov_trace(chain, c, 500);
  EXPECT_EQ(ta.configs, tb.configs);
  EXPECT_NE(ta.configs, tc.configs);
}

TEST(MarkovTrace, HasRequestedShape) {
  const MarkovChain chain = MarkovChain::uniform(3);
  Rng rng(7);
  const TransitionTrace trace = markov_trace(chain, rng, 200, 2);
  EXPECT_EQ(trace.transitions(), 200u);
  EXPECT_EQ(trace.configs.size(), 201u);
  EXPECT_EQ(trace.configs.front(), 2u);
  // The library chains exclude self-transitions: every step reconfigures.
  for (std::size_t k = 1; k < trace.configs.size(); ++k)
    EXPECT_NE(trace.configs[k - 1], trace.configs[k]) << "step " << k;
}

TEST(MarkovTrace, RejectsOutOfRangeStart) {
  const MarkovChain chain = MarkovChain::uniform(3);
  Rng rng(1);
  EXPECT_THROW(markov_trace(chain, rng, 10, 3), Error);
}

// ---------------------------------------------------------------------------
// parse_trace: typed diagnostics with exact source spans, one fixture per
// code (docs/diagnostics.md catalogues them).

TEST(ParseTrace, AcceptsCommentsAndWhitespace) {
  const TraceParse p = parse_trace("# boot\n0 1\t2\n 3 # trailing\n0\n", 4);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.diagnostics.empty());
  EXPECT_EQ(p.trace.configs,
            (std::vector<std::uint32_t>{0, 1, 2, 3, 0}));
  EXPECT_EQ(p.trace.transitions(), 4u);
}

TEST(ParseTrace, BadTokenCarriesExactSpan) {
  const TraceParse p = parse_trace("0\n1\n  bogus\n2\n", 4);
  EXPECT_FALSE(p.ok());
  ASSERT_EQ(p.diagnostics.size(), 1u);
  const analysis::Diagnostic& d = p.diagnostics[0];
  EXPECT_EQ(d.code, "trace-bad-token");
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.span.line, 3u);
  EXPECT_EQ(d.span.column, 3u);
  EXPECT_NE(d.message.find("bogus"), std::string::npos);
  EXPECT_FALSE(d.fixit.empty());
}

TEST(ParseTrace, OverlongNumberIsABadTokenNotUb) {
  // 20 digits would overflow the 64-bit accumulator; the reader rejects the
  // token before multiplying.
  const TraceParse p = parse_trace("0 99999999999999999999 1", 4);
  EXPECT_FALSE(p.ok());
  ASSERT_EQ(p.diagnostics.size(), 1u);
  EXPECT_EQ(p.diagnostics[0].code, "trace-bad-token");
}

TEST(ParseTrace, OutOfRangeIdCarriesExactSpan) {
  const TraceParse p = parse_trace("0 1 7\n", 4);
  EXPECT_FALSE(p.ok());
  ASSERT_EQ(p.diagnostics.size(), 1u);
  const analysis::Diagnostic& d = p.diagnostics[0];
  EXPECT_EQ(d.code, "trace-config-out-of-range");
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.span.line, 1u);
  EXPECT_EQ(d.span.column, 5u);
  EXPECT_NE(d.fixit.find("[0, 4)"), std::string::npos);
}

TEST(ParseTrace, EmptyInputIsAnError) {
  for (const char* text : {"", "   \n\t\n", "# only comments\n# here\n"}) {
    const TraceParse p = parse_trace(text, 4);
    EXPECT_FALSE(p.ok()) << "text='" << text << "'";
    ASSERT_EQ(p.diagnostics.size(), 1u);
    EXPECT_EQ(p.diagnostics[0].code, "trace-empty");
    EXPECT_EQ(p.diagnostics[0].span.line, 0u);  // no position to point at
  }
}

TEST(ParseTrace, SelfTransitionWarnsButParses) {
  const TraceParse p = parse_trace("0\n1\n1\n2\n", 4);
  EXPECT_TRUE(p.ok());  // warnings do not reject the trace
  ASSERT_EQ(p.diagnostics.size(), 1u);
  const analysis::Diagnostic& d = p.diagnostics[0];
  EXPECT_EQ(d.code, "trace-self-transition");
  EXPECT_EQ(d.severity, Severity::Warning);
  EXPECT_EQ(d.span.line, 3u);
  EXPECT_EQ(p.trace.configs, (std::vector<std::uint32_t>{0, 1, 1, 2}));
}

TEST(ParseTrace, KeepsWellFormedEntriesAroundErrors) {
  // The reader recovers after each bad token so one run reports them all.
  const TraceParse p = parse_trace("0 x 1 9 2\n", 3);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.diagnostics.size(), 2u);
  EXPECT_EQ(p.trace.configs, (std::vector<std::uint32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace prpart::sim
