#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/clustering.hpp"
#include "core/partitioner.hpp"
#include "sim/trace.hpp"
#include "tests/core/example_designs.hpp"
#include "util/rng.hpp"

namespace prpart::sim {
namespace {

/// Canonical text form of a scheme, for equality assertions.
std::string key_of(const PartitionScheme& scheme) {
  std::ostringstream os;
  for (const Region& r : scheme.regions) {
    os << "[";
    for (const std::size_t m : r.members) os << m << ",";
    os << "]";
  }
  os << " static:";
  for (const std::size_t m : scheme.static_members) os << m << ",";
  return os.str();
}

struct WorkloadCostTest : ::testing::Test {
  WorkloadCostTest() : design(testing::paper_example()), budget{900, 8, 16} {
    const MarkovChain chain =
        MarkovChain::uniform(design.configurations().size());
    Rng rng(17);
    trace = markov_trace(chain, rng, 500);
  }

  Design design;
  ResourceVec budget;
  TransitionTrace trace;
};

TEST_F(WorkloadCostTest, SearchInvokesTheHookAndOrdersByIt) {
  const SimulatedWorkloadCost cost(design, trace, {},
                                   WorkloadMetric::TotalLatencyNs);
  PartitionerOptions options;
  options.search.workload_cost = &cost;
  const PartitionerResult result = partition_design(design, budget, options);
  ASSERT_TRUE(result.feasible);
  ASSERT_TRUE(result.proposed_from_search);
  // One simulation per kept alternative.
  EXPECT_EQ(cost.evaluations(), result.alternatives.size());
  // Alternatives come back ascending in workload cost, and the proposal is
  // the cheapest one.
  for (std::size_t i = 1; i < result.alternatives.size(); ++i)
    EXPECT_LE(result.alternatives[i - 1].workload_cost,
              result.alternatives[i].workload_cost);
  EXPECT_EQ(key_of(result.proposed.scheme),
            key_of(result.alternatives.front().scheme));
  // The reported costs are the hook's values, recomputable independently.
  const ConnectivityMatrix matrix(design);
  const auto partitions = enumerate_base_partitions(design, matrix);
  for (const RankedScheme& alt : result.alternatives) {
    const SchemeEvaluation eval =
        evaluate_scheme(design, matrix, partitions, alt.scheme, budget);
    ASSERT_TRUE(eval.valid);
    EXPECT_EQ(alt.workload_cost, cost.cost(alt.scheme, eval));
  }
}

/// A cost that inverts the Eq. 10 order: more frames = cheaper.
struct InvertedCost final : WorkloadCost {
  std::uint64_t cost(const PartitionScheme&,
                     const SchemeEvaluation& evaluation) const override {
    return ~evaluation.total_frames;
  }
};

TEST_F(WorkloadCostTest, ReRankingCanOverturnTheProxyOrder) {
  PartitionerOptions plain;
  const PartitionerResult baseline = partition_design(design, budget, plain);
  ASSERT_TRUE(baseline.feasible);
  ASSERT_GE(baseline.alternatives.size(), 2u);

  const InvertedCost inverted;
  PartitionerOptions options;
  options.search.workload_cost = &inverted;
  const PartitionerResult result = partition_design(design, budget, options);
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.alternatives.size(), baseline.alternatives.size());
  // Same scheme set, reversed preference: the proposal is now the
  // highest-total-frames alternative of the baseline run, and the reported
  // evaluation tracks the re-ranked winner.
  const auto worst = std::max_element(
      baseline.alternatives.begin(), baseline.alternatives.end(),
      [](const RankedScheme& a, const RankedScheme& b) {
        return a.total_frames < b.total_frames;
      });
  EXPECT_EQ(key_of(result.proposed.scheme), key_of(worst->scheme));
  EXPECT_EQ(result.proposed.eval.total_frames, worst->total_frames);
  for (std::size_t i = 1; i < result.alternatives.size(); ++i)
    EXPECT_GE(result.alternatives[i - 1].total_frames,
              result.alternatives[i].total_frames);
}

TEST_F(WorkloadCostTest, ReRankedSearchIsThreadCountInvariant) {
  const SimulatedWorkloadCost cost(design, trace, {},
                                   WorkloadMetric::P99LatencyNs);
  auto run = [&](unsigned threads) {
    PartitionerOptions options;
    options.search.workload_cost = &cost;
    options.search.threads = threads;
    return partition_design(design, budget, options);
  };
  const PartitionerResult one = run(1);
  const PartitionerResult four = run(4);
  ASSERT_TRUE(one.feasible);
  EXPECT_EQ(key_of(one.proposed.scheme), key_of(four.proposed.scheme));
  ASSERT_EQ(one.alternatives.size(), four.alternatives.size());
  for (std::size_t i = 0; i < one.alternatives.size(); ++i) {
    EXPECT_EQ(key_of(one.alternatives[i].scheme),
              key_of(four.alternatives[i].scheme));
    EXPECT_EQ(one.alternatives[i].workload_cost,
              four.alternatives[i].workload_cost);
    EXPECT_EQ(one.alternatives[i].total_frames,
              four.alternatives[i].total_frames);
  }
}

TEST_F(WorkloadCostTest, MetricsReadTheMatchingResultField) {
  const PartitionerResult result = partition_design(design, budget);
  ASSERT_TRUE(result.feasible);
  const PartitionScheme& scheme = result.proposed.scheme;
  const SchemeEvaluation& eval = result.proposed.eval;
  const SimulationResult r =
      simulate_scheme(design, scheme, eval, trace);
  const SimulatedWorkloadCost total(design, trace, {},
                                    WorkloadMetric::TotalLatencyNs);
  const SimulatedWorkloadCost p99(design, trace, {},
                                  WorkloadMetric::P99LatencyNs);
  const SimulatedWorkloadCost worst(design, trace, {},
                                    WorkloadMetric::MaxLatencyNs);
  EXPECT_EQ(total.cost(scheme, eval), r.total_latency_ns);
  EXPECT_EQ(p99.cost(scheme, eval), r.p99_latency_ns);
  EXPECT_EQ(worst.cost(scheme, eval), r.max_latency_ns);
  EXPECT_EQ(total.evaluations() + p99.evaluations() + worst.evaluations(), 3u);
}

}  // namespace
}  // namespace prpart::sim
