#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "reconfig/markov.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "tests/core/example_designs.hpp"

namespace prpart::sim {
namespace {

/// A labelled candidate under test.
struct Candidate {
  std::string label;
  const PartitionScheme* scheme;
  const SchemeEvaluation* eval;
};

/// Distinct fitting schemes of one partitioner run: the proposal, the ranked
/// runners-up and the paper's baseline arrangements.
std::vector<Candidate> candidates_of(const PartitionerResult& result,
                                     std::vector<SchemeEvaluation>& alt_evals,
                                     const Design& design,
                                     const ResourceVec& budget) {
  std::vector<Candidate> out;
  out.push_back({"proposed", &result.proposed.scheme, &result.proposed.eval});
  if (result.modular.eval.valid && result.modular.eval.fits)
    out.push_back({"modular", &result.modular.scheme, &result.modular.eval});
  if (result.single_region.eval.valid && result.single_region.eval.fits)
    out.push_back({"single-region", &result.single_region.scheme,
                   &result.single_region.eval});
  // Alternatives carry no evaluation; certify them here. alt_evals is the
  // caller's arena so the pointers stay stable while we append.
  const ConnectivityMatrix matrix(design);
  const auto partitions = enumerate_base_partitions(design, matrix);
  alt_evals.reserve(alt_evals.size() + result.alternatives.size());
  for (std::size_t i = 1; i < result.alternatives.size(); ++i) {
    alt_evals.push_back(evaluate_scheme(design, matrix, partitions,
                                        result.alternatives[i].scheme, budget));
    if (!alt_evals.back().valid || !alt_evals.back().fits) {
      alt_evals.pop_back();
      continue;
    }
    out.push_back({"alt" + std::to_string(i),
                   &result.alternatives[i].scheme, &alt_evals.back()});
  }
  return out;
}

/// The headline property (ISSUE satellite 1): replaying the Eulerian
/// all-pairs circuit serves every ordered transition exactly once, so the
/// frames a scheme loads equal exactly twice its Eq. 10 unordered-pair sum,
/// and ranking schemes by simulated cost reproduces the Eq. 10 ranking in
/// both directions, ties included.
void check_uniform_ranking(const Design& design,
                           const std::vector<Candidate>& candidates,
                           const std::string& context) {
  const std::size_t n = design.configurations().size();
  ASSERT_GE(n, 2u) << context;
  const TransitionTrace trace = uniform_pair_trace(n);

  // Zero fetch setup cost makes served latency proportional to frames, so
  // the latency ranking is exactly the frames ranking (with the default
  // per-bitstream setup cost the *frames* identity below still holds, but
  // latency additionally weights how the frames split across transitions).
  SimulationOptions options;
  options.icap.fetch_latency_ns = 0;

  std::vector<SimulationResult> results;
  results.reserve(candidates.size());
  for (const Candidate& c : candidates)
    results.push_back(
        simulate_scheme(design, *c.scheme, *c.eval, trace, options));

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(results[i].frames_loaded, 2 * candidates[i].eval->total_frames)
        << context << " " << candidates[i].label;
    EXPECT_EQ(results[i].transitions, n * (n - 1)) << context;
  }

  // Weak-order equivalence over every pair of candidates: strictly fewer
  // Eq. 10 frames iff strictly cheaper simulation, equal iff equal.
  for (std::size_t a = 0; a < candidates.size(); ++a)
    for (std::size_t b = 0; b < candidates.size(); ++b) {
      const std::uint64_t fa = candidates[a].eval->total_frames;
      const std::uint64_t fb = candidates[b].eval->total_frames;
      const std::uint64_t sa = results[a].total_latency_ns;
      const std::uint64_t sb = results[b].total_latency_ns;
      EXPECT_EQ(fa < fb, sa < sb)
          << context << ": " << candidates[a].label << " vs "
          << candidates[b].label;
      EXPECT_EQ(fa == fb, sa == sb)
          << context << ": " << candidates[a].label << " vs "
          << candidates[b].label;
    }
}

/// ISSUE satellite 1, second half: without prefetch every served latency is
/// the closed-form ICAP cost of the kernel's frame count for that pair.
void check_closed_form_latency(const Design& design,
                               const std::vector<Candidate>& candidates,
                               const std::string& context) {
  const std::size_t n = design.configurations().size();
  const TransitionTrace trace = uniform_pair_trace(n);
  const SimulationOptions options;  // default ICAP model this time
  for (const Candidate& c : candidates) {
    const SimulationResult r =
        simulate_scheme(design, *c.scheme, *c.eval, trace, options);
    const auto frames = transition_frame_matrix(*c.eval, n);
    std::set<std::uint64_t> closed_form;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        if (i != j)
          closed_form.insert(options.icap.reconfiguration_ns(frames[i][j]));
    std::uint64_t counted = 0;
    for (const auto& [latency, count] : r.latency_counts) {
      EXPECT_TRUE(closed_form.count(latency))
          << context << " " << c.label << ": " << latency
          << " ns has no closed-form preimage";
      counted += count;
    }
    EXPECT_EQ(counted, r.transitions) << context << " " << c.label;
  }
}

TEST(UniformRankingProperty, RandomizedSyntheticDesigns) {
  // The paper's §V generator, small search effort: the point here is many
  // different (design, scheme set) shapes, not search quality.
  PartitionerOptions options;
  options.search.max_move_evaluations = 60'000;
  options.search.keep_alternatives = 4;
  options.search.threads = 1;
  const auto suite = generate_synthetic_suite(20260807, 12);
  const ResourceVec budget{20000, 300, 250};
  std::size_t checked = 0;
  for (const SyntheticDesign& sd : suite) {
    if (sd.design.configurations().size() < 2) continue;
    const PartitionerResult result =
        partition_design(sd.design, budget, options);
    if (!result.feasible) continue;
    std::vector<SchemeEvaluation> alt_evals;
    const auto candidates =
        candidates_of(result, alt_evals, sd.design, budget);
    const std::string context =
        "design seed " + std::to_string(sd.seed);
    check_uniform_ranking(sd.design, candidates, context);
    ++checked;
  }
  // The generator retries until designs are implementable, so the suite
  // must actually exercise the property.
  EXPECT_GE(checked, 8u);
}

TEST(UniformRankingProperty, PaperExamplesIncludingTies) {
  for (const Design& design :
       {testing::paper_example(), testing::fig3_example(),
        testing::one_off_modules()}) {
    const ResourceVec budget{2000, 30, 40};
    const PartitionerResult result = partition_design(design, budget);
    ASSERT_TRUE(result.feasible) << design.name();
    std::vector<SchemeEvaluation> alt_evals;
    auto candidates = candidates_of(result, alt_evals, design, budget);
    // Force an exact tie: the same scheme under two labels must simulate to
    // the same cost, and the weak-order check above treats equal Eq. 10
    // sums as equal simulated cost (ties included, both directions).
    candidates.push_back({"proposed-twin", &result.proposed.scheme,
                          &result.proposed.eval});
    check_uniform_ranking(design, candidates, design.name());
    check_closed_form_latency(design, candidates, design.name());
  }
}

TEST(UniformRankingProperty, ClosedFormLatencyOnSyntheticDesigns) {
  PartitionerOptions options;
  options.search.max_move_evaluations = 40'000;
  options.search.threads = 1;
  const auto suite = generate_synthetic_suite(77, 4);
  const ResourceVec budget{20000, 300, 250};
  for (const SyntheticDesign& sd : suite) {
    if (sd.design.configurations().size() < 2) continue;
    const PartitionerResult result =
        partition_design(sd.design, budget, options);
    if (!result.feasible) continue;
    std::vector<SchemeEvaluation> alt_evals;
    const auto candidates =
        candidates_of(result, alt_evals, sd.design, budget);
    check_closed_form_latency(sd.design, candidates,
                              "design seed " + std::to_string(sd.seed));
  }
}

}  // namespace
}  // namespace prpart::sim
