#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "design/io_xml.hpp"
#include "synth/ip_library.hpp"
#include "util/json.hpp"

namespace prpart::cli {
namespace {

namespace fs = std::filesystem;

/// Runs the CLI and captures streams.
struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun invoke(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

/// Writes the case-study design to a temp file and returns its path.
class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test AND per process: ctest runs each discovered test as
    // its own process, possibly concurrently, so a shared fixed directory
    // would let one test's TearDown delete another's files mid-run.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("prpart_cli_test_" + std::to_string(::getpid()) + "_" +
            info->name());
    fs::create_directories(dir_);
    design_path_ = (dir_ / "receiver.xml").string();
    std::ofstream f(design_path_);
    f << design_to_xml(synth::wireless_receiver_design());
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string design_path_;
};

TEST_F(CliTest, HelpPrintsUsage) {
  const CliRun r = invoke({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
  EXPECT_NE(r.out.find("partition"), std::string::npos);
}

TEST_F(CliTest, NoArgsPrintsUsage) {
  const CliRun r = invoke({});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  const CliRun r = invoke({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, DevicesListsLibrary) {
  const CliRun r = invoke({"devices"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("XC5VFX70T"), std::string::npos);
  EXPECT_NE(r.out.find("XC5VLX20T"), std::string::npos);
}

TEST_F(CliTest, EstimateMapsResources) {
  const CliRun r = invoke({"estimate", "--luts", "400", "--mults", "5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("5 DSPs"), std::string::npos);
}

TEST_F(CliTest, GenerateEmitsParsableXml) {
  const CliRun r = invoke({"generate", "--seed", "3", "--class", "memory"});
  EXPECT_EQ(r.code, 0);
  const Design d = design_from_xml(r.out);
  EXPECT_GE(d.modules().size(), 2u);
}

TEST_F(CliTest, GenerateRejectsUnknownClass) {
  const CliRun r = invoke({"generate", "--class", "quantum"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --class"), std::string::npos);
}

TEST_F(CliTest, GenerateWritesFile) {
  const std::string path = (dir_ / "gen.xml").string();
  const CliRun r = invoke({"generate", "--seed", "5", "--out", path});
  EXPECT_EQ(r.code, 0);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
}

TEST_F(CliTest, LintReportsTheDeadMode) {
  const CliRun r = invoke({"lint", design_path_});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("dead-mode"), std::string::npos);
}

TEST_F(CliTest, AnalyzeReportsCompilerStyleDiagnostics) {
  const CliRun r = invoke({"analyze", design_path_});
  EXPECT_EQ(r.code, 0) << r.err;
  // The receiver parses from a file, so the dead-mode warning carries a
  // resolvable file:line:col prefix.
  EXPECT_NE(r.out.find("warning[dead-mode]"), std::string::npos);
  EXPECT_NE(r.out.find(design_path_ + ":"), std::string::npos);
  EXPECT_NE(r.out.find("  fix: "), std::string::npos);
}

TEST_F(CliTest, AnalyzeCleanDesignSaysNoIssues) {
  const std::string clean = (dir_ / "clean.xml").string();
  {
    std::ofstream f(clean);
    f << "<design name=\"t\">\n"
         "  <module name=\"A\">\n"
         "    <mode name=\"A1\" clbs=\"100\"/>\n"
         "    <mode name=\"A2\" clbs=\"200\"/>\n"
         "  </module>\n"
         "  <module name=\"B\">\n"
         "    <mode name=\"B1\" clbs=\"300\" brams=\"2\"/>\n"
         "    <mode name=\"B2\" clbs=\"50\"/>\n"
         "  </module>\n"
         "  <configurations>\n"
         "    <configuration><use module=\"A\" mode=\"A1\"/>"
         "<use module=\"B\" mode=\"B1\"/></configuration>\n"
         "    <configuration><use module=\"A\" mode=\"A2\"/>"
         "<use module=\"B\" mode=\"B2\"/></configuration>\n"
         "  </configurations>\n"
         "</design>\n";
  }
  const CliRun r = invoke({"analyze", clean});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out, "no issues found\n");
}

TEST_F(CliTest, AnalyzeJsonIsMachineReadable) {
  const CliRun r = invoke({"analyze", design_path_, "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  const json::Value v = json::parse(r.out);
  EXPECT_TRUE(v.at("feasible").as_bool());
  EXPECT_EQ(v.at("errors").as_u64(), 0u);
  EXPECT_GE(v.at("warnings").as_u64(), 1u);
  const auto& diags = v.at("diagnostics").items();
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.front().at("code").as_string(), "dead-mode");
  EXPECT_GE(diags.front().at("line").as_u64(), 1u);
}

TEST_F(CliTest, AnalyzeBrokenXmlExitsFourWithSpans) {
  const std::string broken = (dir_ / "broken.xml").string();
  {
    std::ofstream f(broken);
    f << "<design name=\"t\">\n  <module name=\"A\">\n";
  }
  const CliRun r = invoke({"analyze", broken});
  EXPECT_EQ(r.code, 4);
  EXPECT_NE(r.out.find("error[xml-error]"), std::string::npos);
  EXPECT_NE(r.out.find(broken + ":"), std::string::npos);
}

TEST_F(CliTest, AnalyzeUnknownReferenceExitsFour) {
  const std::string bad = (dir_ / "badref.xml").string();
  {
    std::ofstream f(bad);
    f << "<design name=\"t\">\n"
         "  <module name=\"A\"><mode name=\"M1\" clbs=\"10\"/></module>\n"
         "  <configurations>\n"
         "    <configuration><use module=\"Z\" mode=\"M1\"/></configuration>\n"
         "  </configurations>\n"
         "</design>\n";
  }
  const CliRun r = invoke({"analyze", bad});
  EXPECT_EQ(r.code, 4);
  EXPECT_NE(r.out.find("error[unknown-module-ref]"), std::string::npos);
  EXPECT_NE(r.out.find(bad + ":4:"), std::string::npos);
}

TEST_F(CliTest, AnalyzeInfeasibleBudgetExitsFour) {
  const CliRun r = invoke({"analyze", design_path_, "--budget", "100,1,1"});
  EXPECT_EQ(r.code, 4);
  EXPECT_NE(r.out.find("error[infeasible]"), std::string::npos);
  EXPECT_NE(r.out.find("no scheme fits"), std::string::npos);
}

TEST_F(CliTest, AnalyzeJsonInfeasibleCarriesTheProof) {
  const CliRun r =
      invoke({"analyze", design_path_, "--budget", "100,1,1", "--json"});
  EXPECT_EQ(r.code, 4);
  const json::Value v = json::parse(r.out);
  EXPECT_FALSE(v.at("feasible").as_bool());
  EXPECT_EQ(v.at("proof").at("target").as_string(), "budget");
  EXPECT_GT(v.at("proof").at("required").as_u64(),
            v.at("proof").at("available").as_u64());
}

TEST_F(CliTest, AnalyzeRejectsConflictingTargets) {
  const CliRun r = invoke({"analyze", design_path_, "--device", "XC5VFX70T",
                           "--budget", "1,2,3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("mutually exclusive"), std::string::npos);
}

TEST_F(CliTest, AnalyzeUnknownDeviceIsAUsageError) {
  const CliRun r = invoke({"analyze", design_path_, "--device", "XC7NOPE"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST_F(CliTest, AnalyzeRejectsTypoOption) {
  EXPECT_EQ(invoke({"analyze", design_path_, "--jsno"}).code, 1);
}

TEST_F(CliTest, AnalyzeWithoutDesignFails) {
  const CliRun r = invoke({"analyze"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("expects a design file"), std::string::npos);
}

TEST_F(CliTest, PartitionWithBudget) {
  const CliRun r = invoke({"partition", design_path_, "--budget",
                           "6800,64,150", "--evals", "500000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Proposed"), std::string::npos);
  EXPECT_NE(r.out.find("PRR1"), std::string::npos);
}

TEST_F(CliTest, PartitionWithNamedDevice) {
  const CliRun r = invoke({"partition", design_path_, "--device", "XC5VFX70T",
                           "--evals", "500000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("XC5VFX70T"), std::string::npos);
}

TEST_F(CliTest, PartitionSmallestDeviceSearch) {
  const CliRun r = invoke({"partition", design_path_, "--evals", "300000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("target device:"), std::string::npos);
}

TEST_F(CliTest, PartitionThreadsFlagGivesIdenticalOutput) {
  // --threads changes only how the search runs, never what it prints: the
  // full report must match the single-thread reference byte for byte.
  const CliRun r1 = invoke({"partition", design_path_, "--budget",
                            "6800,64,150", "--evals", "500000", "--threads",
                            "1"});
  const CliRun r4 = invoke({"partition", design_path_, "--budget",
                            "6800,64,150", "--evals", "500000", "--threads",
                            "4"});
  EXPECT_EQ(r1.code, 0) << r1.err;
  EXPECT_EQ(r4.code, 0) << r4.err;
  EXPECT_EQ(r4.out, r1.out);
}

TEST_F(CliTest, PartitionInfeasibleBudgetExitCode2) {
  const CliRun r = invoke({"partition", design_path_, "--budget", "100,1,1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("does not fit"), std::string::npos);
}

TEST_F(CliTest, PartitionInfeasibleBudgetExplainsTheProof) {
  // The analyzer's pre-check runs before the search and prints the
  // lower-bound proof with its witness device.
  const CliRun r = invoke({"partition", design_path_, "--budget", "100,1,1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("no scheme fits"), std::string::npos);
  EXPECT_NE(r.err.find("smallest fitting library device"), std::string::npos);
}

TEST_F(CliTest, PartitionWritesUcf) {
  const std::string ucf = (dir_ / "plan.ucf").string();
  const CliRun r = invoke({"partition", design_path_, "--device", "XC5VFX70T",
                           "--evals", "500000", "--ucf", ucf});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(ucf);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_NE(buf.str().find("AREA_GROUP"), std::string::npos);
}

TEST_F(CliTest, PartitionRejectsTypoOption) {
  const CliRun r = invoke({"partition", design_path_, "--devcie", "X"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown option"), std::string::npos);
}

TEST_F(CliTest, PartitionRejectsBadBudgetSyntax) {
  const CliRun r = invoke({"partition", design_path_, "--budget", "12"});
  EXPECT_EQ(r.code, 1);
}

TEST_F(CliTest, PartitionMissingFileFails) {
  const CliRun r = invoke({"partition", "/nonexistent.xml"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST_F(CliTest, SimulateReportsStats) {
  const CliRun r = invoke({"simulate", design_path_, "--device", "XC5VFX70T",
                           "--steps", "50", "--evals", "300000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("50 transitions"), std::string::npos);
  EXPECT_NE(r.out.find("total frames (Eq. 10)"), std::string::npos);
  EXPECT_NE(r.out.find("latency p50/p95/p99/max:"), std::string::npos);
}

TEST_F(CliTest, SimulateWithPrefetch) {
  const CliRun r = invoke({"simulate", design_path_, "--device", "XC5VFX70T",
                           "--steps", "50", "--evals", "300000",
                           "--prefetch"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("frames loaded:"), std::string::npos);
  EXPECT_NE(r.out.find("prefetched:"), std::string::npos);
}

TEST_F(CliTest, SimulateJsonIsThreadCountInvariant) {
  const std::vector<std::string> base = {
      "simulate",  design_path_, "--device", "XC5VFX70T", "--steps",
      "200",       "--seed",     "9",        "--evals",   "300000",
      "--rank",    "--json"};
  auto with_threads = [&](const char* t) {
    std::vector<std::string> args = base;
    args.insert(args.end(), {"--threads", t});
    return invoke(args);
  };
  const CliRun one = with_threads("1");
  const CliRun four = with_threads("4");
  const CliRun sixteen = with_threads("16");
  ASSERT_EQ(one.code, 0) << one.err;
  EXPECT_EQ(one.out, four.out);
  EXPECT_EQ(one.out, sixteen.out);
  // Two runs with the same seed are byte-identical too.
  EXPECT_EQ(one.out, with_threads("1").out);
}

TEST_F(CliTest, SimulateUniformTraceMatchesEq10) {
  // The Eulerian all-pairs circuit serves every ordered transition exactly
  // once, so the frames loaded equal twice the Eq. 10 unordered-pair total.
  const CliRun r = invoke({"simulate", design_path_, "--device", "XC5VFX70T",
                           "--uniform", "--evals", "300000", "--json"});
  ASSERT_EQ(r.code, 0) << r.err;
  const json::Value doc = json::parse(r.out);
  const json::Value& scheme = doc.at("schemes").items().at(0);
  EXPECT_EQ(scheme.at("frames_loaded").as_u64(),
            2 * scheme.at("total_frames").as_u64());
}

TEST_F(CliTest, SimulateRejectsMalformedTrace) {
  const std::string trace = (dir_ / "trace.txt").string();
  {
    std::ofstream f(trace);
    f << "0\n1\nbogus\n";
  }
  const CliRun r = invoke({"simulate", design_path_, "--device", "XC5VFX70T",
                           "--evals", "300000", "--trace", trace});
  EXPECT_EQ(r.code, 4);
  EXPECT_NE(r.err.find("trace-bad-token"), std::string::npos);
}

TEST_F(CliTest, SimulateReplaysTraceFile) {
  const std::string trace = (dir_ / "trace.txt").string();
  {
    std::ofstream f(trace);
    f << "# hand-written workload\n0\n1\n2\n0\n";
  }
  const CliRun r = invoke({"simulate", design_path_, "--device", "XC5VFX70T",
                           "--evals", "300000", "--trace", trace});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("file, 3 transitions"), std::string::npos);
}

TEST_F(CliTest, BitstreamsWritesFiles) {
  const std::string out_dir = (dir_ / "bits").string();
  const CliRun r = invoke({"bitstreams", design_path_, "--device",
                           "XC5VFX70T", "--evals", "300000", "--out",
                           out_dir});
  EXPECT_EQ(r.code, 0) << r.err;
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(out_dir)) {
    EXPECT_EQ(entry.path().extension(), ".bit");
    EXPECT_GT(fs::file_size(entry.path()), 0u);
    ++files;
  }
  EXPECT_GT(files, 0u);
}

TEST_F(CliTest, FlowWritesArtifacts) {
  const std::string out_dir = (dir_ / "flowout").string();
  const CliRun r = invoke({"flow", design_path_, "--device", "XC5VFX70T",
                           "--evals", "300000", "--out", out_dir});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("device: XC5VFX70T"), std::string::npos);
  EXPECT_TRUE(fs::exists(fs::path(out_dir) / "design.ucf"));
  std::size_t bits = 0;
  for (const auto& entry : fs::directory_iterator(out_dir))
    if (entry.path().extension() == ".bit") ++bits;
  EXPECT_GT(bits, 0u);
}

TEST_F(CliTest, FlowAutoDevice) {
  const CliRun r = invoke({"flow", design_path_, "--evals", "300000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("feedback iterations:"), std::string::npos);
}

TEST_F(CliTest, SaveThenLoadSkipsRepartitioning) {
  const std::string plan = (dir_ / "plan.xml").string();
  const CliRun save = invoke({"partition", design_path_, "--budget",
                              "6800,64,150", "--evals", "300000", "--save",
                              plan});
  ASSERT_EQ(save.code, 0) << save.err;
  EXPECT_NE(save.out.find("saved partitioning"), std::string::npos);

  const CliRun load = invoke({"simulate", design_path_, "--steps", "30",
                              "--load", plan});
  EXPECT_EQ(load.code, 0) << load.err;
  EXPECT_NE(load.out.find("loaded:"), std::string::npos);
  EXPECT_NE(load.out.find("30 transitions"), std::string::npos);
}

TEST_F(CliTest, LoadRejectsForeignPlan) {
  // A plan saved for a different design must be rejected.
  const std::string other_design = (dir_ / "other.xml").string();
  {
    std::ofstream f(other_design);
    f << design_to_xml(synth::wireless_receiver_modified_design());
  }
  const std::string plan = (dir_ / "plan2.xml").string();
  const CliRun save = invoke({"partition", design_path_, "--budget",
                              "6800,64,150", "--evals", "300000", "--save",
                              plan});
  ASSERT_EQ(save.code, 0) << save.err;
  const CliRun load =
      invoke({"simulate", other_design, "--steps", "10", "--load", plan});
  EXPECT_EQ(load.code, 1);
}

TEST_F(CliTest, OptimalOnSmallDesign) {
  // The case study's 13 used modes are too many for the exact search, so
  // exercise the command with a generated small design.
  const std::string small = (dir_ / "small.xml").string();
  const CliRun gen =
      invoke({"generate", "--seed", "4", "--class", "logic", "--out", small});
  ASSERT_EQ(gen.code, 0);
  const CliRun r =
      invoke({"optimal", small, "--budget", "30000,400,300", "--states",
              "500000"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("exact mode-level optimum"), std::string::npos);
}

TEST_F(CliTest, OptimalInfeasibleBudget) {
  const std::string small = (dir_ / "small2.xml").string();
  invoke({"generate", "--seed", "4", "--class", "logic", "--out", small});
  const CliRun r = invoke({"optimal", small, "--budget", "30,0,0"});
  EXPECT_EQ(r.code, 2);
}

TEST_F(CliTest, OptionsWithoutCommandFail) {
  // Regression: an option-only argv used to fall through to a raw
  // std::out_of_range instead of a usage error.
  const CliRun r = invoke({"--budget", "1,2,3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("missing command"), std::string::npos);
}

TEST_F(CliTest, LintWithoutDesignFails) {
  const CliRun r = invoke({"lint"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("expects a design file"), std::string::npos);
}

TEST_F(CliTest, PartitionWithoutDesignFails) {
  const CliRun r = invoke({"partition"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("expects a design file"), std::string::npos);
}

TEST_F(CliTest, SimulateWithoutDesignFails) {
  EXPECT_EQ(invoke({"simulate"}).code, 1);
}

TEST_F(CliTest, BitstreamsWithoutDesignFails) {
  EXPECT_EQ(invoke({"bitstreams"}).code, 1);
}

TEST_F(CliTest, FlowWithoutDesignFails) {
  EXPECT_EQ(invoke({"flow"}).code, 1);
}

TEST_F(CliTest, OptimalWithoutDesignFails) {
  EXPECT_EQ(invoke({"optimal"}).code, 1);
}

TEST_F(CliTest, SubmitWithoutDesignFails) {
  EXPECT_EQ(invoke({"submit"}).code, 1);
}

TEST_F(CliTest, DevicesRejectsUnknownOption) {
  const CliRun r = invoke({"devices", "--frob", "x"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown option"), std::string::npos);
}

TEST_F(CliTest, EstimateRejectsNonNumericValue) {
  EXPECT_EQ(invoke({"estimate", "--luts", "many"}).code, 1);
}

TEST_F(CliTest, GenerateRejectsTypoOption) {
  EXPECT_EQ(invoke({"generate", "--sede", "3"}).code, 1);
}

TEST_F(CliTest, SimulateRejectsTypoOption) {
  EXPECT_EQ(invoke({"simulate", design_path_, "--stpes", "5"}).code, 1);
}

TEST_F(CliTest, BitstreamsRejectsTypoOption) {
  EXPECT_EQ(invoke({"bitstreams", design_path_, "--uot", "d"}).code, 1);
}

TEST_F(CliTest, FlowRejectsTypoOption) {
  EXPECT_EQ(invoke({"flow", design_path_, "--budget", "1,2,3"}).code, 1);
}

TEST_F(CliTest, OptimalRejectsTypoOption) {
  EXPECT_EQ(invoke({"optimal", design_path_, "--staets", "5"}).code, 1);
}

TEST_F(CliTest, ServeRejectsUnknownOption) {
  // check_known fires before any socket is opened, so this cannot hang.
  const CliRun r = invoke({"serve", "--prot", "1234"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown option"), std::string::npos);
}

TEST_F(CliTest, StatsRejectsUnknownOption) {
  EXPECT_EQ(invoke({"stats", "--hots", "x"}).code, 1);
}

TEST_F(CliTest, SubmitRejectsConflictingTargets) {
  const CliRun r = invoke({"submit", design_path_, "--device", "XC5VFX70T",
                           "--budget", "1,2,3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("mutually exclusive"), std::string::npos);
}

TEST_F(CliTest, StatsWithoutServerFails) {
  // Nothing listens on the discard port: the client must fail cleanly.
  const CliRun r = invoke({"stats", "--port", "9"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error"), std::string::npos);
}

TEST_F(CliTest, PartitionJsonIsMachineReadable) {
  const CliRun r = invoke({"partition", design_path_, "--budget",
                           "6800,64,150", "--evals", "300000", "--json"});
  ASSERT_EQ(r.code, 0) << r.err;
  const json::Value v = json::parse(r.out);
  EXPECT_TRUE(v.at("feasible").as_bool());
  EXPECT_GT(v.at("proposed").at("total_frames").as_u64(), 0u);
  EXPECT_EQ(v.at("budget").at("clbs").as_u64(), 6800u);
  EXPECT_TRUE(v.at("baselines").at("modular").is_object());
}

TEST_F(CliTest, PartitionJsonInfeasibleStillEmitsJsonAndExits2) {
  const CliRun r =
      invoke({"partition", design_path_, "--budget", "100,1,1", "--json"});
  EXPECT_EQ(r.code, 2);
  const json::Value v = json::parse(r.out);
  EXPECT_FALSE(v.at("feasible").as_bool());
  EXPECT_TRUE(v.at("proposed").is_null());
  EXPECT_GT(v.at("lower_bound").at("clbs").as_u64(), 0u);
}

TEST_F(CliTest, PartitionJsonRejectsFloorplanCombination) {
  const CliRun r = invoke({"partition", design_path_, "--budget",
                           "6800,64,150", "--json", "--floorplan"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--json"), std::string::npos);
}

TEST_F(CliTest, PartitionJsonIdenticalAcrossThreadCounts) {
  const CliRun r1 = invoke({"partition", design_path_, "--budget",
                            "6800,64,150", "--evals", "300000", "--threads",
                            "1", "--json"});
  const CliRun r4 = invoke({"partition", design_path_, "--budget",
                            "6800,64,150", "--evals", "300000", "--threads",
                            "4", "--json"});
  ASSERT_EQ(r1.code, 0) << r1.err;
  ASSERT_EQ(r4.code, 0) << r4.err;
  EXPECT_EQ(r4.out, r1.out);
}

TEST_F(CliTest, DevicesListsReferenceParts) {
  const CliRun r = invoke({"devices"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("Reference parts"), std::string::npos);
  EXPECT_NE(r.out.find("XC7Z020"), std::string::npos);
  EXPECT_NE(r.out.find("XC7V585T"), std::string::npos);
}

TEST_F(CliTest, FloorplanRanksCandidatesAndPrintsWinner) {
  const CliRun r = invoke({"floorplan", design_path_, "--device", "XC5VFX70T",
                           "--evals", "60000"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Placement-true re-ranking"), std::string::npos);
  EXPECT_NE(r.out.find("placement-true"), std::string::npos);
  EXPECT_NE(r.out.find("Winner floorplan on XC5VFX70T"), std::string::npos);
  EXPECT_NE(r.out.find("PRR1"), std::string::npos);
}

TEST_F(CliTest, FloorplanBudgetTargetPicksSmallestFittingDevice) {
  const CliRun r = invoke({"floorplan", design_path_, "--budget",
                           "6800,64,150", "--evals", "60000"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("placement device:"), std::string::npos);
}

TEST_F(CliTest, FloorplanJsonIsThreadCountInvariant) {
  const std::vector<std::string> base = {"floorplan", design_path_,
                                         "--device", "XC5VFX70T", "--evals",
                                         "60000", "--json", "--threads"};
  std::vector<std::string> a1 = base, a4 = base;
  a1.push_back("1");
  a4.push_back("4");
  const CliRun r1 = invoke(a1);
  const CliRun r4 = invoke(a4);
  ASSERT_EQ(r1.code, 0) << r1.err;
  ASSERT_EQ(r4.code, 0) << r4.err;
  EXPECT_EQ(r4.out, r1.out);

  const json::Value v = json::parse(r1.out);
  EXPECT_TRUE(v.at("feasible").as_bool());
  EXPECT_EQ(v.at("device").as_string(), "XC5VFX70T");
  ASSERT_FALSE(v.at("ranked").items().empty());
  const json::Value& top = v.at("ranked").items().front();
  EXPECT_FALSE(top.at("vetoed").as_bool());
  EXPECT_GE(top.at("placement_total").as_u64(),
            top.at("estimated_total").as_u64());
  EXPECT_FALSE(top.at("placements").items().empty());
  EXPECT_TRUE(v.at("winner").is_object());
}

TEST_F(CliTest, FloorplanOverturnExampleOnTheCaseStudyDevice) {
  // The committed co-optimization example: synthetic seed 16 (logic class)
  // on the FX70T. The Eq. 10 estimate ties all enumerated schemes; the
  // placement-true cost re-ranks a runner-up into first place and vetoes
  // two schemes for static overflow, with a retarget fix-it.
  const std::string path = (dir_ / "seed16.xml").string();
  const CliRun gen = invoke({"generate", "--seed", "16", "--class", "logic",
                             "--out", path});
  ASSERT_EQ(gen.code, 0) << gen.err;
  const CliRun r = invoke({"floorplan", path, "--device", "XC5VFX70T",
                           "--evals", "60000"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("overturns the Eq. 10 ranking"), std::string::npos);
  EXPECT_NE(r.out.find("VETOED"), std::string::npos);
  EXPECT_NE(r.out.find("retarget XC5VFX95T"), std::string::npos);
}

TEST_F(CliTest, FloorplanAllVetoedExitsTwoWithDiagnostics) {
  // Auto device walk on the seed-7 dspmem design lands on a device where
  // every enumerated scheme is vetoed; the command reports the diagnostics
  // and exits 2 like an infeasible partition.
  const std::string path = (dir_ / "seed7.xml").string();
  const CliRun gen = invoke({"generate", "--seed", "7", "--class", "dspmem",
                             "--out", path});
  ASSERT_EQ(gen.code, 0) << gen.err;
  const CliRun r = invoke({"floorplan", path, "--device", "XC5VFX95T",
                           "--evals", "60000"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("VETOED"), std::string::npos);
  EXPECT_NE(r.err.find("no enumerated scheme has a legal floorplan"),
            std::string::npos);
}

TEST_F(CliTest, FloorplanRejectsZeroTopK) {
  const CliRun r = invoke({"floorplan", design_path_, "--device", "XC5VFX70T",
                           "--top-k", "0"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--top-k"), std::string::npos);
}

TEST_F(CliTest, FloorplanRejectsTypoOption) {
  const CliRun r = invoke({"floorplan", design_path_, "--device", "XC5VFX70T",
                           "--topk", "3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown option"), std::string::npos);
}

TEST_F(CliTest, PartitionFloorplanPrintsPlacementTrueCost) {
  const CliRun r = invoke({"partition", design_path_, "--device", "XC5VFX70T",
                           "--evals", "60000", "--floorplan"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Floorplan on XC5VFX70T"), std::string::npos);
  EXPECT_NE(r.out.find("placement-true:"), std::string::npos);
}

TEST_F(CliTest, SimulateFloorplanReplaysPlacementTrueFrames) {
  const CliRun plain = invoke({"simulate", design_path_, "--device",
                               "XC5VFX70T", "--evals", "60000",
                               "--steps", "2000"});
  const CliRun placed = invoke({"simulate", design_path_, "--device",
                                "XC5VFX70T", "--evals", "60000",
                                "--steps", "2000", "--floorplan"});
  ASSERT_EQ(plain.code, 0) << plain.err;
  ASSERT_EQ(placed.code, 0) << placed.err;
  // Same workload, placement-true frame counts: the replay exists and the
  // output differs from the estimate-priced one (waste is never free on
  // this design/device pair).
  EXPECT_NE(placed.out, plain.out);
}

TEST_F(CliTest, SimulateRejectsFloorplanWithLoad) {
  const CliRun r = invoke({"simulate", design_path_, "--load", "plan.xml",
                           "--floorplan"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--floorplan"), std::string::npos);
}

TEST_F(CliTest, DeterministicOutput) {
  const std::vector<std::string> args = {"partition", design_path_,
                                         "--budget", "6800,64,150",
                                         "--evals", "300000"};
  const CliRun a = invoke(args);
  const CliRun b = invoke(args);
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(a.code, b.code);
}

}  // namespace
}  // namespace prpart::cli
