// Full tool-flow integration: XML design description -> partitioner ->
// floorplanner -> bitstream generation -> runtime simulation (Fig. 2's
// pipeline on our substrates).
#include <gtest/gtest.h>

#include "bitstream/bitstream.hpp"
#include "core/partitioner.hpp"
#include "design/builder.hpp"
#include "design/io_xml.hpp"
#include "floorplan/floorplanner.hpp"
#include "reconfig/controller.hpp"
#include "reconfig/markov.hpp"
#include "synth/estimator.hpp"
#include "synth/ip_library.hpp"

namespace prpart {
namespace {

/// A design written the way a user of the tool flow would: behavioural
/// specs estimated into areas, serialised to XML, read back, partitioned.
Design cognitive_radio_design() {
  using synth::BehavioralSpec;
  using synth::estimate;
  auto area = [](std::uint32_t luts, std::uint32_t ffs, std::uint32_t mults,
                 std::uint32_t kbits) {
    BehavioralSpec spec;
    spec.luts = luts;
    spec.ffs = ffs;
    spec.mult18s = mults;
    spec.mem_kbits = kbits;
    return estimate(spec);
  };
  return DesignBuilder("cognitive-radio")
      .static_base({90, 8, 0})
      .module("frontend", {{"sense", area(4200, 3800, 36, 180)},
                           {"rx", area(2600, 2400, 18, 72)}})
      .module("modem", {{"ofdm", area(5200, 6100, 44, 216)},
                        {"gsm", area(2100, 1900, 10, 36)}})
      .module("codec", {{"viterbi", area(2400, 2600, 0, 72)},
                        {"turbo", area(3000, 3400, 4, 540)}})
      .configuration({{"frontend", "sense"}})
      .configuration({{"frontend", "rx"}, {"modem", "ofdm"},
                      {"codec", "turbo"}})
      .configuration({{"frontend", "rx"}, {"modem", "gsm"},
                      {"codec", "viterbi"}})
      .configuration({{"frontend", "rx"}, {"modem", "ofdm"},
                      {"codec", "viterbi"}})
      .build();
}

TEST(EndToEnd, FullFlowOnCognitiveRadio) {
  // 1. Serialise and re-read the design description (the tool's XML input).
  const Design authored = cognitive_radio_design();
  const Design design = design_from_xml(design_to_xml(authored));

  // 2. Pick the smallest workable device and partition.
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const DevicePartitionResult dp = partition_on_smallest_device(design, lib);
  ASSERT_NE(dp.device, nullptr);
  ASSERT_TRUE(dp.result.feasible);
  const PartitionerResult& pr = dp.result;
  EXPECT_TRUE(pr.proposed.eval.valid);
  EXPECT_TRUE(pr.proposed.eval.fits);

  // 3. Floorplan the proposed scheme on the chosen device.
  const Floorplanner fp(*dp.device);
  const FloorplanResult plan = fp.place_scheme(pr.proposed.eval);
  EXPECT_TRUE(plan.success);
  if (plan.success) {
    const std::string ucf = to_ucf(*dp.device, plan.placements);
    EXPECT_NE(ucf.find("AREA_GROUP"), std::string::npos);
  }

  // 4. Generate the partial bitstreams.
  const auto bitstreams = generate_bitstreams(
      design, pr.base_partitions, pr.proposed.scheme, pr.proposed.eval);
  for (const Bitstream& b : bitstreams) validate_bitstream(b);

  // 5. Run an adaptation scenario through the reconfiguration controller.
  ReconfigurationController ctl(design, pr.proposed.scheme, pr.proposed.eval);
  ctl.boot(0);
  Rng rng(99);
  const MarkovChain chain =
      MarkovChain::uniform(design.configurations().size());
  std::size_t state = 0;
  for (int step = 0; step < 200; ++step) {
    state = chain.sample_next(rng, state);
    ctl.transition(state);
  }
  EXPECT_EQ(ctl.stats().transitions, 200u);
  // Cold loads right after boot can exceed the warm worst case, but a
  // transition can never rewrite more than every region once.
  std::uint64_t all_regions = 0;
  for (const RegionReport& r : pr.proposed.eval.regions)
    all_regions += r.frames;
  EXPECT_LE(ctl.stats().worst_transition_frames, all_regions);
  // The realised mean cost cannot exceed the worst case and, with stale
  // contents, is bounded by the Eq. 10 uniform-pair mean only loosely; we
  // check it is positive and finite.
  EXPECT_GT(ctl.stats().total_frames, 0u);
}

TEST(EndToEnd, CaseStudyFlowProducesStorableArtifacts) {
  const Design design = synth::wireless_receiver_design();
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 4'000'000;
  const PartitionerResult pr =
      partition_design(design, synth::wireless_receiver_budget(), opt);
  ASSERT_TRUE(pr.feasible);

  const auto bitstreams = generate_bitstreams(
      design, pr.base_partitions, pr.proposed.scheme, pr.proposed.eval);
  // Storage need: every region member is one partial bitstream; the total
  // must be positive and match the per-bitstream sizes.
  EXPECT_GT(total_bytes(bitstreams), 0u);

  // Boot each configuration and reach every other one.
  ReconfigurationController ctl(design, pr.proposed.scheme, pr.proposed.eval);
  const std::size_t n = design.configurations().size();
  for (std::size_t i = 0; i < n; ++i) {
    ctl.boot(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      ctl.transition(j);
      EXPECT_EQ(ctl.current_config(), j);
      ctl.transition(i);
    }
  }
}

TEST(EndToEnd, EstimatorFeedsPartitionerDirectly) {
  // The §IV flow allows IP-core numbers and estimator output to mix; check
  // a design whose areas come from both paths survives the full pipeline.
  const synth::IpLibrary ip = synth::IpLibrary::standard();
  synth::BehavioralSpec control;
  control.luts = 900;
  control.ffs = 700;
  const Design d =
      DesignBuilder("mixed")
          .static_base(ip.lookup("icap_controller").area)
          .module("tx", {{"ofdm", ip.lookup("ofdm_tx").area},
                         {"gsm", ip.lookup("gsm_tx").area}})
          .module("ctl", {{"v1", synth::estimate(control)}})
          .configuration({{"tx", "ofdm"}, {"ctl", "v1"}})
          .configuration({{"tx", "gsm"}, {"ctl", "v1"}})
          .build();
  const PartitionerResult pr = partition_design(d, {4000, 40, 80});
  ASSERT_TRUE(pr.feasible);
  EXPECT_TRUE(pr.proposed.eval.fits);
}

}  // namespace
}  // namespace prpart
