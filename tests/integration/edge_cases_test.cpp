// Edge cases the module-level suites do not reach: designs wider than one
// bitset word (>64 modes / >64 configurations), degenerate areas, exact
// budget boundaries, and single-configuration systems.
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "design/builder.hpp"
#include "design/io_xml.hpp"
#include "reconfig/controller.hpp"

namespace prpart {
namespace {

/// 18 modules x 4 modes = 72 modes (two bitset words); configurations pair
/// mode k of every module so each mode is used.
Design wide_mode_design() {
  DesignBuilder b("wide-modes");
  for (int m = 0; m < 18; ++m) {
    const std::string name = "M" + std::to_string(m);
    std::vector<Mode> modes;
    for (int k = 0; k < 4; ++k)
      modes.push_back(Mode{name + "." + std::to_string(k),
                           {static_cast<std::uint32_t>(40 + 10 * k), 0, 0}});
    b.module(name, modes);
  }
  for (int k = 0; k < 4; ++k) {
    std::vector<std::pair<std::string, std::string>> choices;
    for (int m = 0; m < 18; ++m) {
      const std::string name = "M" + std::to_string(m);
      choices.emplace_back(name, name + "." + std::to_string(k));
    }
    b.configuration(choices);
  }
  return b.build();
}

/// 2 modules, 70 configurations (>64, two occupancy words): module A picks
/// one of 7 modes, module B one of 10.
Design wide_config_design() {
  DesignBuilder b("wide-configs");
  std::vector<Mode> a_modes, b_modes;
  for (int k = 0; k < 7; ++k)
    a_modes.push_back(Mode{"A" + std::to_string(k),
                           {static_cast<std::uint32_t>(30 + k), 0, 0}});
  for (int k = 0; k < 10; ++k)
    b_modes.push_back(Mode{"B" + std::to_string(k),
                           {static_cast<std::uint32_t>(50 + k), 0, 0}});
  b.module("A", a_modes).module("B", b_modes);
  for (int i = 0; i < 7; ++i)
    for (int j = 0; j < 10; ++j)
      b.configuration({{"A", "A" + std::to_string(i)},
                       {"B", "B" + std::to_string(j)}});
  return b.build();
}

TEST(EdgeCases, WideModeDesignPartitions) {
  const Design d = wide_mode_design();
  EXPECT_EQ(d.mode_count(), 72u);
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 300'000;
  opt.max_partition_modes = 4;  // avoid the 2^18 subset enumeration
  const PartitionerResult r = partition_design(d, {100000, 100, 100}, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed.eval.valid);
  // Room for everything separately: zero reconfiguration time reachable.
  EXPECT_EQ(r.proposed.eval.total_frames, 0u);
}

TEST(EdgeCases, WideModeDesignTightBudget) {
  const Design d = wide_mode_design();
  const ResourceVec lower = d.largest_configuration_area();
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 300'000;
  opt.max_partition_modes = 4;
  const PartitionerResult r = partition_design(
      d, {lower.clbs + lower.clbs / 4, 10, 10}, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed.eval.fits);
  EXPECT_LE(r.proposed.eval.total_frames,
            r.single_region.eval.total_frames);
}

TEST(EdgeCases, WideConfigDesignPartitions) {
  const Design d = wide_config_design();
  EXPECT_EQ(d.configurations().size(), 70u);
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 300'000;
  const PartitionerResult r = partition_design(d, {400, 10, 10}, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed.eval.valid);
  // 70 configurations -> C(70,2) = 2415 unordered pairs in the single
  // region baseline.
  EXPECT_EQ(r.single_region.eval.regions[0].reconfig_pairs, 2415u);
}

TEST(EdgeCases, WideConfigXmlRoundTrip) {
  const Design d = wide_config_design();
  const Design back = design_from_xml(design_to_xml(d));
  EXPECT_EQ(back.configurations().size(), 70u);
  EXPECT_EQ(back.mode_count(), d.mode_count());
}

TEST(EdgeCases, SingleConfigurationNeverReconfigures) {
  const Design d = DesignBuilder("one-config")
                       .module("A", {{"A1", {100, 2, 4}}})
                       .module("B", {{"B1", {200, 0, 0}}})
                       .configuration({{"A", "A1"}, {"B", "B1"}})
                       .build();
  const PartitionerResult r = partition_design(d, {400, 4, 8});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.proposed.eval.total_frames, 0u);
  EXPECT_EQ(r.proposed.eval.worst_frames, 0u);
  EXPECT_EQ(r.single_region.eval.total_frames, 0u);
  EXPECT_EQ(r.single_region.eval.worst_frames, 0u);
}

TEST(EdgeCases, ZeroAreaModesAreHarmless) {
  const Design d = DesignBuilder("ghost")
                       .module("A", {{"on", {100, 0, 0}}, {"off", {0, 0, 0}}})
                       .module("B", {{"B1", {50, 0, 0}}, {"B2", {60, 0, 0}}})
                       .configuration({{"A", "on"}, {"B", "B1"}})
                       .configuration({{"A", "off"}, {"B", "B2"}})
                       .configuration({{"B", "B1"}})
                       .build();
  const PartitionerResult r = partition_design(d, {200, 2, 2});
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed.eval.valid);
  ReconfigurationController ctl(d, r.proposed.scheme, r.proposed.eval);
  ctl.boot(0);
  ctl.transition(1);
  ctl.transition(2);
  ctl.transition(0);
  EXPECT_EQ(ctl.stats().transitions, 3u);
}

TEST(EdgeCases, BudgetExactlyAtSingletonFootprint) {
  const Design d = DesignBuilder("exact")
                       .module("A", {{"A1", {20, 0, 0}}, {"A2", {40, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .configuration({{"A", "A2"}})
                       .build();
  // Singleton footprints tile-rounded: 20 + 40 CLBs = 60 exactly.
  const PartitionerResult r = partition_design(d, {60, 0, 0});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.proposed.eval.total_frames, 0u);
  EXPECT_EQ(r.proposed.eval.total_resources.clbs, 60u);
  // One CLB less forces sharing.
  const PartitionerResult tight = partition_design(d, {59, 0, 0});
  ASSERT_TRUE(tight.feasible);
  EXPECT_GT(tight.proposed.eval.total_frames, 0u);
}

TEST(EdgeCases, ManyModesOneModule) {
  // A single module with 12 modes: everything is pairwise compatible, so
  // any grouping is legal; with room for the largest mode only, all modes
  // share one region (the modular == single-region degenerate case).
  DesignBuilder b("fat-module");
  std::vector<Mode> modes;
  for (int k = 0; k < 12; ++k)
    modes.push_back(Mode{"m" + std::to_string(k),
                         {static_cast<std::uint32_t>(100 + k * 10), 0, 0}});
  b.module("A", modes);
  for (int k = 0; k < 12; ++k)
    b.configuration({{"A", "m" + std::to_string(k)}});
  const Design d = b.build();
  const PartitionerResult r = partition_design(d, {220, 0, 0});
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed.eval.fits);
  EXPECT_EQ(r.proposed.eval.total_frames,
            r.single_region.eval.total_frames);
}

TEST(EdgeCases, DesignWithBramAndDspOnlyModes) {
  const Design d = DesignBuilder("hard-blocks")
                       .module("mem", {{"big", {0, 32, 0}}, {"small", {0, 8, 0}}})
                       .module("mul", {{"wide", {0, 0, 48}}, {"narrow", {0, 0, 16}}})
                       .configuration({{"mem", "big"}, {"mul", "narrow"}})
                       .configuration({{"mem", "small"}, {"mul", "wide"}})
                       .build();
  const PartitionerResult r = partition_design(d, {100, 40, 64});
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed.eval.valid);
}

}  // namespace
}  // namespace prpart
