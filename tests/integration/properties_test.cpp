// Property-based sweeps: invariants of the whole partitioning pipeline over
// seeded synthetic designs (TEST_P over seeds, one design per seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "core/clustering.hpp"
#include "core/compatibility.hpp"
#include "core/partitioner.hpp"
#include "design/io_xml.hpp"
#include "design/synthetic.hpp"
#include "device/tiles.hpp"
#include "reconfig/controller.hpp"

namespace prpart {
namespace {

class PipelineProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  PipelineProperties() {
    Rng rng(GetParam());
    const auto cls = static_cast<CircuitClass>(GetParam() % 4);
    design_.emplace(generate_synthetic(rng, cls).design);
    // A budget between the single-region lower bound and full static keeps
    // the search non-trivial: 1.35x the lower bound.
    const ResourceVec lower =
        design_->largest_configuration_area() + design_->static_base();
    budget_ = ResourceVec{lower.clbs + lower.clbs / 3 + 200,
                          lower.brams + lower.brams / 3 + 8,
                          lower.dsps + lower.dsps / 3 + 8};
    PartitionerOptions opt;
    opt.search.max_move_evaluations = 300'000;  // keep the suite fast
    result_.emplace(partition_design(*design_, budget_, opt));
  }

  std::optional<Design> design_;
  ResourceVec budget_;
  std::optional<PartitionerResult> result_;
};

TEST_P(PipelineProperties, ProposedIsValidAndFits) {
  ASSERT_TRUE(result_->feasible);
  EXPECT_TRUE(result_->proposed.eval.valid)
      << result_->proposed.eval.invalid_reason;
  EXPECT_TRUE(result_->proposed.eval.fits);
  EXPECT_TRUE(result_->proposed.eval.total_resources.fits_in(budget_));
}

TEST_P(PipelineProperties, ProposedNeverWorseThanSingleRegion) {
  ASSERT_TRUE(result_->feasible);
  EXPECT_LE(result_->proposed.eval.total_frames,
            result_->single_region.eval.total_frames);
}

TEST_P(PipelineProperties, EveryConfigurationCoveredExactlyOnce) {
  ASSERT_TRUE(result_->feasible);
  // The single-region fallback intentionally uses full-configuration
  // bitstreams whose members overlap in occupancy; the unique-active-member
  // invariant only applies to search-produced schemes.
  if (!result_->proposed_from_search)
    GTEST_SKIP() << "single-region fallback";
  const ConnectivityMatrix matrix(*design_);
  const auto& parts = result_->base_partitions;
  const PartitionScheme& s = result_->proposed.scheme;

  DynBitset static_modes(design_->mode_count());
  for (std::size_t p : s.static_members) static_modes |= parts[p].modes;

  for (std::size_t c = 0; c < matrix.configs(); ++c) {
    DynBitset provided = static_modes;
    for (const Region& region : s.regions) {
      int active = -1;
      for (std::size_t m = 0; m < region.members.size(); ++m) {
        if (parts[region.members[m]].modes.intersects(matrix.row(c))) {
          EXPECT_EQ(active, -1)
              << "two active members in one region, config " << c;
          active = static_cast<int>(m);
        }
      }
      if (active >= 0)
        provided |=
            parts[region.members[static_cast<std::size_t>(active)]].modes;
    }
    EXPECT_TRUE(matrix.row(c).is_subset_of(provided))
        << "config " << c << " not fully provided";
  }
}

TEST_P(PipelineProperties, RegionsHoldOnlyCompatibleMembers) {
  ASSERT_TRUE(result_->feasible);
  if (!result_->proposed_from_search)
    GTEST_SKIP() << "single-region fallback";
  const ConnectivityMatrix matrix(*design_);
  const CompatibilityTable compat(matrix, result_->base_partitions);
  for (const Region& region : result_->proposed.scheme.regions)
    for (std::size_t i = 0; i < region.members.size(); ++i)
      for (std::size_t j = i + 1; j < region.members.size(); ++j)
        EXPECT_TRUE(compat.compatible(region.members[i], region.members[j]));
}

TEST_P(PipelineProperties, ResourceAccountingIsConsistent) {
  ASSERT_TRUE(result_->feasible);
  const SchemeEvaluation& e = result_->proposed.eval;
  // total = pr + static, and pr equals the sum of tile-rounded regions.
  ResourceVec pr;
  for (const RegionReport& r : e.regions) pr += r.tiles.resources();
  EXPECT_EQ(pr, e.pr_resources);
  EXPECT_EQ(e.pr_resources + e.static_resources, e.total_resources);
  // Regions are tile-rounded versions of their raw areas.
  for (const RegionReport& r : e.regions) EXPECT_EQ(r.tiles, tiles_for(r.raw));
}

TEST_P(PipelineProperties, WorstIsBoundedByTotalAndByRegionSum) {
  ASSERT_TRUE(result_->feasible);
  const SchemeEvaluation& e = result_->proposed.eval;
  std::uint64_t all_regions = 0;
  for (const RegionReport& r : e.regions) all_regions += r.frames;
  EXPECT_LE(e.worst_frames, all_regions);
  if (design_->configurations().size() >= 2) {
    EXPECT_LE(e.worst_frames, e.total_frames);
  }
}

TEST_P(PipelineProperties, SimulatorAgreesWithCostModel) {
  // Eq. 10 models warm operation: after i and j have both been visited, the
  // i <-> j costs equal the model's and are symmetric.
  ASSERT_TRUE(result_->feasible);
  const std::size_t n = design_->configurations().size();
  ReconfigurationController ctl(*design_, result_->proposed.scheme,
                                result_->proposed.eval);
  std::uint64_t total = 0;
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      ctl.boot(i);
      ctl.transition(j);  // warm-up: load j's regions
      ctl.transition(i);
      const std::uint64_t f = ctl.peek_frames(j);
      ctl.transition(j);
      // Symmetry of the stale-content rule in the warm state.
      EXPECT_EQ(ctl.peek_frames(i), f);
      total += f;
      worst = std::max(worst, f);
    }
  EXPECT_EQ(total, result_->proposed.eval.total_frames);
  EXPECT_EQ(worst, result_->proposed.eval.worst_frames);
}

TEST_P(PipelineProperties, XmlRoundTripPreservesPartitioningOutcome) {
  ASSERT_TRUE(result_->feasible);
  const Design reparsed = design_from_xml(design_to_xml(*design_));
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 300'000;
  const PartitionerResult again = partition_design(reparsed, budget_, opt);
  ASSERT_TRUE(again.feasible);
  EXPECT_EQ(again.proposed.eval.total_frames,
            result_->proposed.eval.total_frames);
  EXPECT_EQ(again.proposed.eval.total_resources,
            result_->proposed.eval.total_resources);
}

TEST_P(PipelineProperties, TotalTimeMatchesBruteForceEq10) {
  // Recompute Eq. 10 from first principles — region frames from the member
  // areas (Eqs. 1-6), active members from mode-set intersection, d_ij from
  // comparing active members — without going through SchemeEvaluation, and
  // require exact agreement with the reported total.
  ASSERT_TRUE(result_->feasible);
  if (!result_->proposed_from_search)
    GTEST_SKIP() << "single-region fallback";
  const ConnectivityMatrix matrix(*design_);
  const auto& parts = result_->base_partitions;

  std::uint64_t total = 0;
  for (const Region& region : result_->proposed.scheme.regions) {
    ResourceVec raw;
    for (std::size_t m : region.members)
      raw = elementwise_max(raw, parts[m].area);
    const std::uint64_t frames = tiles_for(raw).frames();
    std::vector<int> active(matrix.configs(), -1);
    for (std::size_t c = 0; c < matrix.configs(); ++c)
      for (std::size_t m = 0; m < region.members.size(); ++m)
        if (parts[region.members[m]].modes.intersects(matrix.row(c)))
          active[c] = static_cast<int>(m);
    for (std::size_t i = 0; i < active.size(); ++i)
      for (std::size_t j = i + 1; j < active.size(); ++j)
        if (active[i] >= 0 && active[j] >= 0 && active[i] != active[j])
          total += frames;
  }
  EXPECT_EQ(total, result_->proposed.eval.total_frames);
}

TEST_P(PipelineProperties, EveryAlternativeFitsTheBudgetExactly) {
  // The search only records states with zero budget excess; re-evaluating
  // every ranked alternative must confirm element-wise feasibility and the
  // stored objective value.
  ASSERT_TRUE(result_->feasible);
  const ConnectivityMatrix matrix(*design_);
  for (const RankedScheme& alt : result_->alternatives) {
    const SchemeEvaluation e = evaluate_scheme(
        *design_, matrix, result_->base_partitions, alt.scheme, budget_);
    EXPECT_TRUE(e.valid) << e.invalid_reason;
    EXPECT_TRUE(e.fits);
    EXPECT_TRUE(e.total_resources.fits_in(budget_));
    EXPECT_EQ(e.total_frames, alt.total_frames);
  }
}

TEST_P(PipelineProperties, EveryAlternativeHasUniqueActiveMemberPerRegion) {
  // Active-partition uniqueness (at most one member of a region is present
  // in any configuration) must hold for every ranked alternative, not just
  // the proposed scheme.
  ASSERT_TRUE(result_->feasible);
  const ConnectivityMatrix matrix(*design_);
  const auto& parts = result_->base_partitions;
  for (const RankedScheme& alt : result_->alternatives)
    for (std::size_t c = 0; c < matrix.configs(); ++c)
      for (const Region& region : alt.scheme.regions) {
        std::size_t active = 0;
        for (std::size_t m : region.members)
          if (parts[m].modes.intersects(matrix.row(c))) ++active;
        EXPECT_LE(active, 1u) << "config " << c;
      }
}

TEST_P(PipelineProperties, ThreadCountDoesNotChangeOutcome) {
  // End-to-end determinism: partitioning with an explicit 4-thread search
  // must reproduce the reference run (auto thread count) exactly.
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 300'000;
  opt.search.threads = 4;
  const PartitionerResult par = partition_design(*design_, budget_, opt);
  ASSERT_EQ(par.feasible, result_->feasible);
  if (!par.feasible) return;
  EXPECT_EQ(par.proposed.eval.total_frames,
            result_->proposed.eval.total_frames);
  EXPECT_EQ(par.proposed.eval.total_resources,
            result_->proposed.eval.total_resources);
  EXPECT_EQ(par.stats.move_evaluations, result_->stats.move_evaluations);
  EXPECT_EQ(par.stats.states_recorded, result_->stats.states_recorded);
  ASSERT_EQ(par.alternatives.size(), result_->alternatives.size());
  for (std::size_t i = 0; i < par.alternatives.size(); ++i)
    EXPECT_EQ(par.alternatives[i].total_frames,
              result_->alternatives[i].total_frames);
}

TEST_P(PipelineProperties, BaselinesAreValid) {
  EXPECT_TRUE(result_->modular.eval.valid);
  EXPECT_TRUE(result_->static_impl.eval.valid);
  EXPECT_EQ(result_->static_impl.eval.total_frames, 0u);
  // Single region: every pair reconfigures the one region.
  const std::size_t n = design_->configurations().size();
  EXPECT_EQ(result_->single_region.eval.total_frames,
            n * (n - 1) / 2 * result_->single_region.eval.regions[0].frames);
}

INSTANTIATE_TEST_SUITE_P(SyntheticSeeds, PipelineProperties,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace prpart
