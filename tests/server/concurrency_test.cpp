#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "design/io_xml.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace prpart::server {
namespace {

/// Cross-thread hammer for the server's locking seams: ServerStats, the
/// result cache, the job queue and the connection registry all run hot and
/// concurrently here. Under TSan this is the data-race regression test for
/// the annotated concurrency layer; in every build the counter identities
/// below catch lost updates and torn aggregation.
constexpr unsigned kClientThreads = 4;
constexpr std::uint64_t kEvals = 10'000;

Design small_design() {
  std::vector<Module> modules = {
      {"Filter", {{"LowPass", {120, 4, 2}}, {"HighPass", {150, 2, 6}}}},
      {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
  };
  std::vector<Configuration> configs = {
      {"Receive", {1, 2}},
      {"Transmit", {2, 1}},
  };
  return Design("radio", {40, 1, 0}, std::move(modules), std::move(configs));
}

PartitionRequest partition_request(const std::string& id,
                                   std::uint64_t evals = kEvals) {
  PartitionRequest req;
  req.id = id;
  req.design_xml = design_to_xml(small_design());
  req.budget = ResourceVec{4000, 60, 60};
  req.options = default_partitioner_options();
  req.options.search.max_move_evaluations = evals;
  return req;
}

TEST(ServerConcurrencyTest, MixedJobHammerKeepsCountersConsistent) {
  ServerOptions options;
  options.port = 0;
  options.workers = 4;
  options.max_queue = 64;
  Server server(options);
  server.start();

  std::atomic<std::uint64_t> oks{0};
  std::atomic<std::uint64_t> submitted{0};  ///< queue-path jobs only
  std::atomic<bool> failed{false};

  auto hammer = [&](unsigned t) {
    try {
      Client client("127.0.0.1", server.port());
      const std::string tag = std::to_string(t);

      // Identical across threads: after the first miss these share one
      // cache entry, racing hit/miss bookkeeping on purpose.
      ClientResponse r = client.submit(partition_request("shared-" + tag));
      submitted.fetch_add(1);
      if (r.ok) oks.fetch_add(1);

      // Unique per thread (the evals knob is part of the cache key).
      r = client.submit(partition_request("unique-" + tag, kEvals + t + 1));
      submitted.fetch_add(1);
      if (r.ok) oks.fetch_add(1);

      SimulateRequest sim;
      sim.partition = partition_request("sim-" + tag);
      sim.params.steps = 2'000;
      sim.params.seed = t + 1;
      r = client.simulate(sim);
      submitted.fetch_add(1);
      if (r.ok) oks.fetch_add(1);

      FloorplanRequest fp;
      fp.partition = partition_request("fp-" + tag);
      fp.params.top_k = 3;
      r = client.floorplan(fp);
      submitted.fetch_add(1);
      if (r.ok) oks.fetch_add(1);

      // Inline paths exercise the stats mutex from the handler threads
      // without touching the queue.
      AnalyzeRequest an;
      an.id = "an-" + tag;
      an.design_xml = design_to_xml(small_design());
      if (client.analyze(an).ok) oks.fetch_add(1);
      if (client.stats("st-" + tag).ok) oks.fetch_add(1);
    } catch (...) {
      failed.store(true);
    }
  };

  // A dedicated poller reads snapshots (queue lock + stats lock) while the
  // workers fold counters in.
  std::atomic<bool> polling{true};
  std::thread poller([&] {
    while (polling.load()) {
      const StatsSnapshot snap = server.stats_snapshot();
      ASSERT_LE(snap.completed, snap.accepted);
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (unsigned t = 0; t < kClientThreads; ++t)
    clients.emplace_back(hammer, t);
  for (std::thread& c : clients) c.join();
  polling.store(false);
  poller.join();
  server.stop();

  ASSERT_FALSE(failed.load());
  // Every request succeeded: 6 per client thread.
  EXPECT_EQ(oks.load(), kClientThreads * 6u);

  const StatsSnapshot snap = server.stats_snapshot();
  // Admission identities: every queue-path submission either hit the cache
  // or was accepted, every miss was accepted, and — ample queue, feasible
  // jobs, no deadline — every accepted job completed. Lost or doubled
  // counter updates break these equalities.
  EXPECT_EQ(snap.cache_hits + snap.cache_misses, submitted.load());
  EXPECT_EQ(snap.accepted, snap.cache_misses);
  EXPECT_EQ(snap.completed, snap.accepted);
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.timed_out, 0u);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_EQ(snap.infeasible, 0u);
  // The shared partition request guarantees at least one hit (first thread
  // misses, at least one later thread reuses the stored payload) — unless
  // all four raced past the store, which the identical-bytes determinism
  // makes harmless but the counters still record as misses. Weak bound:
  EXPECT_GE(snap.cache_hits + snap.cache_misses, kClientThreads * 4u);
  // Stage counters flowed through: searches, replays and floorplan passes
  // all ran at least once per thread's unique jobs.
  EXPECT_GT(snap.search_move_evaluations, 0u);
  EXPECT_GE(snap.simulations, 1u);
  EXPECT_GT(snap.simulated_transitions, 0u);
  EXPECT_GE(snap.floorplans, 1u);
  EXPECT_GT(snap.floorplan_candidates, 0u);
  EXPECT_EQ(snap.queue_depth, 0u);
  EXPECT_EQ(snap.in_flight, 0u);
}

TEST(ServerConcurrencyTest, PipelinedHammerKeepsCounterIdentities) {
  // The reactor-path twin of the hammer above: every client pipelines its
  // whole burst on one connection before reading anything, so admission,
  // the line cache, the result store and the completion outbox all run
  // concurrently. The identities must hold exactly — a lost or doubled
  // update under the event loop breaks them.
  ServerOptions options;
  options.port = 0;
  options.workers = 4;
  options.max_queue = 64;
  Server server(options);
  server.start();

  constexpr unsigned kConns = 8;
  constexpr unsigned kPerConn = 6;
  std::atomic<std::uint64_t> finals{0};
  std::atomic<bool> failed{false};
  auto hammer = [&](unsigned t) {
    try {
      TcpStream stream = TcpStream::connect("127.0.0.1", server.port());
      // Round 1 runs cold (every burst is admitted before anything has
      // completed, so nothing can hit); round 2 repeats the same requests
      // under fresh ids, which must all be served from the store.
      for (unsigned round = 0; round < 2; ++round) {
        std::string burst;
        for (unsigned i = 0; i < kPerConn; ++i) {
          // Half shared across connections (cache contention), half unique
          // per connection; both halves repeat across rounds.
          const bool shared = i % 2 == 0;
          const std::string id = (shared ? "ps-" : "pu-") +
                                 std::to_string(round) + "-" +
                                 std::to_string(t) + "-" + std::to_string(i);
          const std::uint64_t evals =
              shared ? kEvals : kEvals + 100 * t + i + 1;
          burst +=
              partition_request_json(partition_request(id, evals)).dump();
          burst += "\n";
        }
        stream.write_all(burst);
        unsigned seen = 0;
        while (seen < kPerConn) {
          const std::optional<std::string> line = stream.read_line();
          if (!line) break;
          // Interim queued notices carry no `ok`; finals always do.
          if (line->find("\"ok\":") == std::string::npos) continue;
          ++seen;
          finals.fetch_add(1);
        }
      }
    } catch (...) {
      failed.store(true);
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(kConns);
  for (unsigned t = 0; t < kConns; ++t) clients.emplace_back(hammer, t);
  for (std::thread& c : clients) c.join();
  server.stop();

  ASSERT_FALSE(failed.load());
  EXPECT_EQ(finals.load(), 2u * kConns * kPerConn);
  const StatsSnapshot snap = server.stats_snapshot();
  // Every pipelined submission either hit a cache layer or was accepted;
  // every miss was accepted; every accepted job completed.
  EXPECT_EQ(snap.cache_hits + snap.cache_misses,
            2u * std::uint64_t(kConns) * kPerConn);
  EXPECT_EQ(snap.accepted, snap.cache_misses);
  EXPECT_EQ(snap.completed, snap.accepted);
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_EQ(snap.timed_out, 0u);
  // Round 2 repeats round 1 with only the ids changed: every one of those
  // requests is served from a cache layer.
  EXPECT_GE(snap.cache_hits, std::uint64_t(kConns) * kPerConn);
  EXPECT_EQ(snap.queue_depth, 0u);
  EXPECT_EQ(snap.in_flight, 0u);
}

}  // namespace
}  // namespace prpart::server
