#include "server/hash.hpp"

#include <gtest/gtest.h>

#include "design/io_xml.hpp"
#include "synth/ip_library.hpp"

namespace prpart::server {
namespace {

/// A small two-module design in its reference declaration order.
Design reference_design() {
  std::vector<Module> modules = {
      {"Filter", {{"LowPass", {120, 4, 2}}, {"HighPass", {150, 2, 6}}}},
      {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
  };
  std::vector<Configuration> configs = {
      {"Receive", {1, 2}},
      {"Transmit", {2, 1}},
      {"Idle", {0, 1}},
  };
  return Design("radio", {40, 1, 0}, std::move(modules), std::move(configs));
}

/// The same design with modules, modes and configurations permuted, with
/// every configuration's mode numbers remapped to match.
Design permuted_design() {
  std::vector<Module> modules = {
      {"Codec", {{"Dense", {60, 12, 1}}, {"Fast", {80, 8, 0}}}},
      {"Filter", {{"HighPass", {150, 2, 6}}, {"LowPass", {120, 4, 2}}}},
  };
  // Module order is now [Codec, Filter]; Codec's Fast is mode 2, Dense 1;
  // Filter's HighPass is mode 1, LowPass 2.
  std::vector<Configuration> configs = {
      {"Idle", {2, 0}},
      {"Transmit", {2, 1}},
      {"Receive", {1, 2}},
  };
  return Design("radio", {40, 1, 0}, std::move(modules), std::move(configs));
}

TEST(HashTest, DeclarationOrderDoesNotChangeTheHash) {
  const Design a = reference_design();
  const Design b = permuted_design();
  EXPECT_EQ(canonical_design_string(a), canonical_design_string(b));
  EXPECT_EQ(content_hash(canonical_design_string(a)),
            content_hash(canonical_design_string(b)));
}

TEST(HashTest, ResourceChangeChangesTheHash) {
  const Design a = reference_design();
  std::vector<Module> modules = {
      {"Filter", {{"LowPass", {121, 4, 2}}, {"HighPass", {150, 2, 6}}}},
      {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
  };
  std::vector<Configuration> configs = {
      {"Receive", {1, 2}}, {"Transmit", {2, 1}}, {"Idle", {0, 1}}};
  const Design b("radio", {40, 1, 0}, std::move(modules), std::move(configs));
  EXPECT_NE(content_hash(canonical_design_string(a)),
            content_hash(canonical_design_string(b)));
}

TEST(HashTest, ConfigurationChangeChangesTheHash) {
  const Design a = reference_design();
  std::vector<Module> modules = {
      {"Filter", {{"LowPass", {120, 4, 2}}, {"HighPass", {150, 2, 6}}}},
      {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
  };
  // Idle now uses Codec's Fast instead of Dense.
  std::vector<Configuration> configs = {
      {"Receive", {1, 2}}, {"Transmit", {2, 1}}, {"Idle", {0, 2}}};
  const Design b("radio", {40, 1, 0}, std::move(modules), std::move(configs));
  EXPECT_NE(content_hash(canonical_design_string(a)),
            content_hash(canonical_design_string(b)));
}

TEST(HashTest, StaticBaseChangeChangesTheHash) {
  std::vector<Module> modules = {
      {"Filter", {{"LowPass", {120, 4, 2}}, {"HighPass", {150, 2, 6}}}},
      {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
  };
  std::vector<Configuration> configs = {
      {"Receive", {1, 2}}, {"Transmit", {2, 1}}, {"Idle", {0, 1}}};
  const Design b("radio", {41, 1, 0}, std::move(modules), std::move(configs));
  EXPECT_NE(content_hash(canonical_design_string(reference_design())),
            content_hash(canonical_design_string(b)));
}

TEST(HashTest, StableAcrossXmlRoundTrip) {
  // Serialising to the XML input format and parsing back must preserve the
  // content identity: the cache outlives any single process.
  const Design a = synth::wireless_receiver_design();
  const Design b = design_from_xml(design_to_xml(a));
  EXPECT_EQ(content_hash(canonical_design_string(a)),
            content_hash(canonical_design_string(b)));
}

TEST(HashTest, HashIsAFixedWidthHexDigest) {
  const std::string digest = content_hash("payload");
  EXPECT_EQ(digest.size(), 32u);
  EXPECT_EQ(digest.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(digest, content_hash("payload"));
  EXPECT_NE(digest, content_hash("payloae"));
}

TEST(HashTest, CacheKeyIgnoresThreadsAndCostCache) {
  const Design design = reference_design();
  PartitionerOptions a;
  PartitionerOptions b;
  b.search.threads = 8;
  b.search.use_cost_cache = !a.search.use_cost_cache;
  // Thread count and memoisation change how the search runs, never what it
  // returns, so they must not fragment the cache.
  EXPECT_EQ(job_cache_key(design, "auto", a), job_cache_key(design, "auto", b));
}

TEST(HashTest, CacheKeySeparatesEffortTargetsAndDesigns) {
  const Design design = reference_design();
  PartitionerOptions base;
  PartitionerOptions more_sets = base;
  more_sets.search.max_candidate_sets += 1;
  PartitionerOptions more_evals = base;
  more_evals.search.max_move_evaluations += 1;

  const std::string k = job_cache_key(design, "auto", base);
  EXPECT_NE(k, job_cache_key(design, "auto", more_sets));
  EXPECT_NE(k, job_cache_key(design, "auto", more_evals));
  EXPECT_NE(k, job_cache_key(design, "device XC5VFX70T", base));
  EXPECT_NE(k, job_cache_key(design, "budget 100,10,10", base));
  EXPECT_NE(k, job_cache_key(synth::wireless_receiver_design(), "auto", base));
}

TEST(HashTest, PermutedDesignSharesTheCacheKey) {
  PartitionerOptions options;
  EXPECT_EQ(job_cache_key(reference_design(), "auto", options),
            job_cache_key(permuted_design(), "auto", options));
}

}  // namespace
}  // namespace prpart::server
