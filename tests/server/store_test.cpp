#include "server/store.hpp"

#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace prpart::server {
namespace {

namespace fs = std::filesystem;

/// A fresh per-test directory under the system temp root.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("prpart_store_test_" + std::to_string(::getpid()) + "_" +
            info->name());
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

 private:
  fs::path dir_;
};

TEST_F(StoreTest, DiskRoundTripIsByteIdentical) {
  DiskStore store(dir(), 16);
  ASSERT_TRUE(store.enabled());
  const std::string payload = "{\"schemes\":[1,2,3]}\x01 raw bytes \n pass";
  store.save("abc123", payload);
  EXPECT_EQ(store.load("abc123"), payload);
  EXPECT_FALSE(store.load("missing").has_value());
  const DiskStore::Stats stats = store.stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, payload.size());
}

TEST_F(StoreTest, EmptyDirOrZeroCapDisablesTheStore) {
  DiskStore no_dir("", 16);
  EXPECT_FALSE(no_dir.enabled());
  no_dir.save("k", "v");
  EXPECT_FALSE(no_dir.load("k").has_value());
  DiskStore no_cap(dir(), 0);
  EXPECT_FALSE(no_cap.enabled());
}

TEST_F(StoreTest, LruCapEvictsOldestFiles) {
  DiskStore store(dir(), 2);
  store.save("a", "1");
  store.save("b", "2");
  store.save("c", "3");  // evicts a
  EXPECT_FALSE(store.load("a").has_value());
  EXPECT_EQ(store.load("b"), "2");
  store.save("d", "4");  // b was just touched, so c is the victim
  EXPECT_FALSE(store.load("c").has_value());
  EXPECT_EQ(store.load("b"), "2");
  EXPECT_EQ(store.load("d"), "4");
  const DiskStore::Stats stats = store.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST_F(StoreTest, WarmStartIndexesExistingFiles) {
  {
    DiskStore store(dir(), 16);
    store.save("left", "payload-left");
    store.save("right", "payload-right");
  }
  DiskStore reopened(dir(), 16);
  EXPECT_EQ(reopened.stats().entries, 2u);
  EXPECT_EQ(reopened.load("left"), "payload-left");
  EXPECT_EQ(reopened.load("right"), "payload-right");
}

TEST_F(StoreTest, WarmStartRespectsTheCap) {
  {
    DiskStore store(dir(), 16);
    store.save("a", "1");
    store.save("b", "2");
    store.save("c", "3");
  }
  // Reopening with a smaller cap trims down to it.
  DiskStore reopened(dir(), 2);
  EXPECT_EQ(reopened.stats().entries, 2u);
}

TEST_F(StoreTest, StrayFilesAreIgnored) {
  {
    std::ofstream f(fs::path(dir()) / "README.txt");
    f << "not a result";
  }
  DiskStore store(dir(), 16);
  EXPECT_EQ(store.stats().entries, 0u);
}

TEST_F(StoreTest, VanishedFileIsAMissNotACrash) {
  DiskStore store(dir(), 16);
  store.save("gone", "soon");
  fs::remove(fs::path(dir()) / "gone.res");
  EXPECT_FALSE(store.load("gone").has_value());
}

TEST_F(StoreTest, ResultStoreSpillsEvictionsAndPromotesDiskHits) {
  ResultStore store(1, dir(), 16);  // single RAM slot forces spills
  store.store("first", "payload-1");
  store.store("second", "payload-2");  // evicts first -> spilled to disk
  EXPECT_EQ(store.disk_stats().writes, 1u);
  // The spilled entry still serves — from disk, promoted back to RAM.
  EXPECT_EQ(store.lookup("first"), "payload-1");
  EXPECT_EQ(store.disk_stats().hits, 1u);
  // Promotion made it RAM-resident again (and spilled `second` out).
  EXPECT_EQ(store.lookup("first"), "payload-1");
  EXPECT_EQ(store.disk_stats().hits, 1u);  // unchanged: served from RAM
}

TEST_F(StoreTest, FlushPersistsResidentEntriesForWarmRestart) {
  {
    ResultStore store(8, dir(), 16);
    store.store("k1", "v1");
    store.store("k2", "v2");
    EXPECT_EQ(store.disk_stats().writes, 0u);  // nothing evicted yet
    store.flush();
    EXPECT_EQ(store.disk_stats().writes, 2u);
  }
  ResultStore reopened(8, dir(), 16);
  EXPECT_EQ(reopened.lookup("k1"), "v1");
  EXPECT_EQ(reopened.lookup("k2"), "v2");
}

TEST_F(StoreTest, RamOnlyStoreStillServes) {
  ResultStore store(4, "", 0);
  EXPECT_FALSE(store.disk_enabled());
  store.store("k", "v");
  EXPECT_EQ(store.lookup("k"), "v");
  store.flush();  // no-op
  EXPECT_FALSE(store.lookup("absent").has_value());
}

}  // namespace
}  // namespace prpart::server
