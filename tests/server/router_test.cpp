#include "server/router.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "design/io_xml.hpp"
#include "server/client.hpp"
#include "server/hash.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace prpart::server {
namespace {

Design small_design() {
  std::vector<Module> modules = {
      {"Filter", {{"LowPass", {120, 4, 2}}, {"HighPass", {150, 2, 6}}}},
      {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
  };
  std::vector<Configuration> configs = {
      {"Receive", {1, 2}},
      {"Transmit", {2, 1}},
  };
  return Design("radio", {40, 1, 0}, std::move(modules), std::move(configs));
}

PartitionRequest small_request(const std::string& id) {
  PartitionRequest req;
  req.id = id;
  req.design_xml = design_to_xml(small_design());
  req.budget = ResourceVec{4000, 60, 60};
  req.options = default_partitioner_options();
  req.options.search.max_move_evaluations = 60'000;
  return req;
}

/// A router fronting `n` in-process shard servers.
class RouterFixture {
 public:
  explicit RouterFixture(std::size_t n) {
    RouterOptions opt;
    for (std::size_t i = 0; i < n; ++i) {
      ServerOptions sopt;
      sopt.port = 0;
      sopt.workers = 2;
      shards_.push_back(std::make_unique<Server>(sopt));
      shards_.back()->start();
      opt.shard_ports.push_back(shards_.back()->port());
    }
    router_ = std::make_unique<ShardRouter>(std::move(opt));
    router_->start();
  }

  ~RouterFixture() {
    router_->stop();
    for (auto& shard : shards_) shard->stop();
  }

  ShardRouter& router() { return *router_; }
  Server& shard(std::size_t i) { return *shards_[i]; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  std::vector<std::unique_ptr<Server>> shards_;
  std::unique_ptr<ShardRouter> router_;
};

TEST(RouterTest, NeedsAtLeastOneShard) {
  EXPECT_THROW(ShardRouter{RouterOptions{}}, std::exception);
}

TEST(RouterTest, RingSpreadsDigestsAcrossShards) {
  RouterOptions opt;
  opt.shard_ports = {1, 2, 3};  // never dialled: ring-only test
  const ShardRouter router(std::move(opt));
  std::vector<std::size_t> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    const std::size_t shard =
        router.shard_of_digest(content_hash("design-" + std::to_string(i)));
    ASSERT_LT(shard, counts.size());
    ++counts[shard];
  }
  // 64 vnodes per shard: each shard owns a substantial share of the space.
  for (std::size_t shard = 0; shard < counts.size(); ++shard)
    EXPECT_GT(counts[shard], 300u) << "shard " << shard << " starved";
}

TEST(RouterTest, RoutingIsStableAndCanonical) {
  RouterOptions opt;
  opt.shard_ports = {1, 2};
  const ShardRouter router(std::move(opt));
  const std::string line = partition_request_json(small_request("x")).dump();
  const std::size_t shard = router.shard_of_line(line);
  // Deterministic: same design, same shard, every time — and id-independent
  // (the digest covers the canonical design, not the request envelope).
  EXPECT_EQ(router.shard_of_line(line), shard);
  const std::string other = partition_request_json(small_request("y")).dump();
  EXPECT_EQ(router.shard_of_line(other), shard);
  // Non-job and unparseable lines pin to shard 0.
  EXPECT_EQ(router.shard_of_line("{\"type\":\"ping\",\"id\":\"p\"}"), 0u);
  EXPECT_EQ(router.shard_of_line("not json at all"), 0u);
}

TEST(RouterTest, ServesJobsThroughTheFrontPort) {
  RouterFixture fixture(2);
  Client client("127.0.0.1", fixture.router().port());
  EXPECT_TRUE(client.ping("p").ok);
  const ClientResponse resp = client.submit(small_request("via-router"));
  ASSERT_TRUE(resp.ok) << resp.error_message;
  // Exactly one shard ran the job — the one the ring picked.
  const std::string line =
      partition_request_json(small_request("via-router")).dump();
  const std::size_t expected = fixture.router().shard_of_line(line);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < fixture.shard_count(); ++i) {
    const StatsSnapshot snap = fixture.shard(i).stats_snapshot();
    total += snap.cache_misses;
    if (i == expected)
      EXPECT_EQ(snap.cache_misses, 1u);
    else
      EXPECT_EQ(snap.cache_misses, 0u);
  }
  EXPECT_EQ(total, 1u);
}

TEST(RouterTest, RoutedResponseIsByteIdenticalToDirect) {
  RouterFixture fixture(2);
  const std::string request =
      partition_request_json(small_request("twin")).dump();
  // Direct to the owning shard.
  const std::size_t owner = fixture.router().shard_of_line(request);
  std::string direct;
  {
    TcpStream stream =
        TcpStream::connect("127.0.0.1", fixture.shard(owner).port());
    stream.write_all(request + "\n");
    direct = stream.read_line().value_or("");
  }
  // Same request through the router: the relay passes bytes verbatim and
  // the shard's result store makes the repeat a byte-identical cache hit.
  std::string routed;
  {
    TcpStream stream =
        TcpStream::connect("127.0.0.1", fixture.router().port());
    stream.write_all(request + "\n");
    routed = stream.read_line().value_or("");
  }
  ASSERT_FALSE(direct.empty());
  EXPECT_EQ(routed, direct);
}

TEST(RouterTest, OneConnectionFansOutAcrossShards) {
  RouterFixture fixture(3);
  Client client("127.0.0.1", fixture.router().port());
  // Distinct designs spread over the ring; every response comes back on
  // the one client connection with its own id.
  int shards_hit = 0;
  for (int i = 0; i < 8; ++i) {
    PartitionRequest req = small_request("fan-" + std::to_string(i));
    req.options.search.max_move_evaluations = 10'000 + std::uint64_t(i);
    const ClientResponse resp = client.submit(req);
    ASSERT_TRUE(resp.ok) << resp.error_message;
  }
  for (std::size_t i = 0; i < fixture.shard_count(); ++i)
    if (fixture.shard(i).stats_snapshot().cache_misses > 0) ++shards_hit;
  // The evals knob is not part of the design digest, so all 8 land on one
  // shard; ping/stats pin to shard 0. Spread comes from distinct designs:
  EXPECT_GE(shards_hit, 1);
  // Now vary the design itself and require real fan-out.
  for (int i = 0; i < 8; ++i) {
    PartitionRequest req = small_request("spread-" + std::to_string(i));
    std::vector<Module> modules = {
        {"M" + std::to_string(i), {{"Impl", {100u + unsigned(i), 4, 2}}}},
        {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
    };
    std::vector<Configuration> configs = {{"Only", {1, 1}}};
    req.design_xml = design_to_xml(Design("d" + std::to_string(i),
                                          {40, 1, 0}, std::move(modules),
                                          std::move(configs)));
    const ClientResponse resp = client.submit(req);
    ASSERT_TRUE(resp.ok) << resp.error_message;
  }
  shards_hit = 0;
  for (std::size_t i = 0; i < fixture.shard_count(); ++i)
    if (fixture.shard(i).stats_snapshot().cache_misses > 0) ++shards_hit;
  EXPECT_GE(shards_hit, 2) << "9 distinct designs all hashed to one shard";
}

TEST(RouterTest, StopUnblocksIdleClients) {
  auto fixture = std::make_unique<RouterFixture>(2);
  TcpStream idle = TcpStream::connect("127.0.0.1", fixture->router().port());
  // A ping round trip proves the connection was accepted and its reader
  // thread is parked on read_line before the teardown begins.
  idle.write_all("{\"type\":\"ping\",\"id\":\"alive\"}\n");
  ASSERT_TRUE(idle.read_line().has_value());
  // Destroy the fixture while the client sits connected and silent: stop()
  // must shut the connection down rather than hang joining its reader. The
  // client observes EOF (or a reset if close outruns the FIN) — never a
  // hang.
  fixture.reset();
  try {
    EXPECT_FALSE(idle.read_line().has_value());
  } catch (const SocketError&) {
    // Reset is an acceptable way for the teardown to surface.
  }
}

}  // namespace
}  // namespace prpart::server
