#include "server/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "design/io_xml.hpp"
#include "server/client.hpp"
#include "synth/ip_library.hpp"

namespace prpart::server {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kEvals = 60'000;

Design small_design() {
  std::vector<Module> modules = {
      {"Filter", {{"LowPass", {120, 4, 2}}, {"HighPass", {150, 2, 6}}}},
      {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
  };
  std::vector<Configuration> configs = {
      {"Receive", {1, 2}},
      {"Transmit", {2, 1}},
  };
  return Design("radio", {40, 1, 0}, std::move(modules), std::move(configs));
}

/// small_design() with every declaration list permuted: a semantically
/// identical design whose XML bytes differ.
Design permuted_small_design() {
  std::vector<Module> modules = {
      {"Codec", {{"Dense", {60, 12, 1}}, {"Fast", {80, 8, 0}}}},
      {"Filter", {{"HighPass", {150, 2, 6}}, {"LowPass", {120, 4, 2}}}},
  };
  std::vector<Configuration> configs = {
      {"Transmit", {2, 1}},
      {"Receive", {1, 2}},
  };
  return Design("radio", {40, 1, 0}, std::move(modules), std::move(configs));
}

PartitionRequest small_request(const std::string& id,
                               std::uint64_t evals = kEvals) {
  PartitionRequest req;
  req.id = id;
  req.design_xml = design_to_xml(small_design());
  req.budget = ResourceVec{4000, 60, 60};
  req.options = default_partitioner_options();
  req.options.search.max_move_evaluations = evals;
  return req;
}

PartitionRequest receiver_request(const std::string& id,
                                  std::uint64_t evals = kEvals) {
  PartitionRequest req;
  req.id = id;
  req.design_xml = design_to_xml(synth::wireless_receiver_design());
  req.budget = ResourceVec{6800, 64, 150};
  req.options = default_partitioner_options();
  req.options.search.max_move_evaluations = evals;
  return req;
}

ServerOptions quiet_options() {
  ServerOptions opt;
  opt.port = 0;  // ephemeral
  opt.workers = 4;
  return opt;
}

/// Sends `request` over a raw socket and returns the raw response line,
/// bypassing the Client's parse/re-dump round trip: the tests below compare
/// these bytes directly.
std::string raw_exchange(std::uint16_t port, const json::Value& request) {
  TcpStream stream = TcpStream::connect("127.0.0.1", port);
  stream.write_all(request.dump() + "\n");
  const std::optional<std::string> line = stream.read_line();
  EXPECT_TRUE(line.has_value());
  return line.value_or("");
}

/// Extracts the spliced `result` payload from a raw ok response line.
std::string result_payload(const std::string& line, const std::string& id) {
  const std::string prefix =
      "{\"id\":" + json::escape(id) + ",\"ok\":true,\"result\":";
  EXPECT_EQ(line.rfind(prefix, 0), 0u) << line;
  if (line.rfind(prefix, 0) != 0) return "";
  return line.substr(prefix.size(), line.size() - prefix.size() - 1);
}

TEST(ServerTest, BootsPingsAndStops) {
  Server server(quiet_options());
  server.start();
  ASSERT_NE(server.port(), 0);
  Client client("127.0.0.1", server.port());
  const ClientResponse pong = client.ping("p");
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.id, "p");
  EXPECT_TRUE(pong.result.at("pong").as_bool());
  server.stop();
  // After the drain the listener is closed: new clients are refused.
  EXPECT_THROW(TcpStream::connect("127.0.0.1", server.port()), SocketError);
}

TEST(ServerTest, StopIsIdempotent) {
  Server server(quiet_options());
  server.start();
  server.stop();
  server.stop();  // second drain is a no-op; destructor adds a third
}

TEST(ServerTest, ResponseMatchesOneShotCliByteForByte) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::temp_directory_path() /
                       ("prpart_server_test_" + std::to_string(::getpid()) +
                        "_" + info->name());
  fs::create_directories(dir);
  const std::string design_path = (dir / "receiver.xml").string();
  {
    std::ofstream f(design_path);
    f << design_to_xml(synth::wireless_receiver_design());
  }
  std::ostringstream cli_out, cli_err;
  const int code = cli::run({"partition", design_path, "--budget",
                             "6800,64,150", "--evals", std::to_string(kEvals),
                             "--json"},
                            cli_out, cli_err);
  ASSERT_EQ(code, 0) << cli_err.str();
  std::string expected = cli_out.str();
  ASSERT_FALSE(expected.empty());
  expected.pop_back();  // trailing newline

  Server server(quiet_options());
  server.start();
  const std::string line = raw_exchange(
      server.port(), partition_request_json(receiver_request("cli-twin")));
  EXPECT_EQ(result_payload(line, "cli-twin"), expected);
  fs::remove_all(dir);
}

TEST(ServerTest, AnalyzeRequestIsServedInline) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  AnalyzeRequest req;
  req.id = "an1";
  req.design_xml = design_to_xml(synth::wireless_receiver_design());
  const ClientResponse resp = client.analyze(req);
  ASSERT_TRUE(resp.ok) << resp.error_message;
  EXPECT_TRUE(resp.result.at("feasible").as_bool());
  EXPECT_EQ(resp.result.at("errors").as_u64(), 0u);
  bool dead_mode = false;
  for (const json::Value& d : resp.result.at("diagnostics").items())
    dead_mode = dead_mode || d.at("code").as_string() == "dead-mode";
  EXPECT_TRUE(dead_mode);
  // Analyze bypasses the job queue entirely.
  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServerTest, AnalyzeMalformedDesignReturnsDiagnosticsNotAnError) {
  // A broken design is the expected input of the diagnostics engine: the
  // response is ok with error-severity diagnostics, never bad_request.
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  AnalyzeRequest req;
  req.id = "an-broken";
  req.design_xml = "<design name=\"t\"></design>";
  const ClientResponse resp = client.analyze(req);
  ASSERT_TRUE(resp.ok) << resp.error_message;
  EXPECT_TRUE(resp.result.at("feasible").is_null());
  EXPECT_GE(resp.result.at("errors").as_u64(), 2u);  // no modules, no configs
}

TEST(ServerTest, AnalyzeUnknownDeviceIsBadRequest) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  AnalyzeRequest req;
  req.id = "an-dev";
  req.design_xml = design_to_xml(small_design());
  req.device = "XC9NOPE";
  const ClientResponse resp = client.analyze(req);
  ASSERT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "bad_request");
}

TEST(ServerTest, AnalyzeResponseMatchesOneShotCliByteForByte) {
  // The served analyze payload and `prpart analyze --json` run the same
  // encoder over the same text, so their bytes must be identical.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::temp_directory_path() /
                       ("prpart_server_test_" + std::to_string(::getpid()) +
                        "_" + info->name());
  fs::create_directories(dir);
  const std::string design_path = (dir / "receiver.xml").string();
  const std::string design_xml = design_to_xml(synth::wireless_receiver_design());
  {
    std::ofstream f(design_path);
    f << design_xml;
  }
  std::ostringstream cli_out, cli_err;
  const int code =
      cli::run({"analyze", design_path, "--json"}, cli_out, cli_err);
  ASSERT_EQ(code, 0) << cli_err.str();
  std::string expected = cli_out.str();
  ASSERT_FALSE(expected.empty());
  expected.pop_back();  // trailing newline

  Server server(quiet_options());
  server.start();
  AnalyzeRequest req;
  req.id = "an-twin";
  req.design_xml = design_xml;
  const std::string line =
      raw_exchange(server.port(), analyze_request_json(req));
  EXPECT_EQ(result_payload(line, "an-twin"), expected);
  fs::remove_all(dir);
}

TEST(ServerTest, InfeasibleJobIsRejectedBeforeAdmissionWithTheProof) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  PartitionRequest req = small_request("hopeless");
  req.budget = ResourceVec{10, 0, 0};
  const ClientResponse resp = client.submit(req);
  ASSERT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "infeasible");
  EXPECT_NE(resp.error_message.find("no scheme fits"), std::string::npos);
  // The proof fired before admission: no queue slot, no search.
  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.infeasible, 1u);
}

TEST(ServerTest, CacheHitIsByteIdenticalToColdRun) {
  Server server(quiet_options());
  server.start();
  const json::Value request = partition_request_json(small_request("c1"));
  const std::string cold = raw_exchange(server.port(), request);
  const std::string warm = raw_exchange(server.port(), request);
  EXPECT_EQ(warm, cold);
  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.completed, 1u);  // the warm response ran no search
}

TEST(ServerTest, PermutedDesignXmlHitsTheCache) {
  Server server(quiet_options());
  server.start();
  PartitionRequest permuted = small_request("perm");
  permuted.design_xml = design_to_xml(permuted_small_design());
  ASSERT_NE(permuted.design_xml, small_request("perm").design_xml);

  const std::string first = raw_exchange(
      server.port(), partition_request_json(small_request("perm")));
  const std::string second =
      raw_exchange(server.port(), partition_request_json(permuted));
  // Content addressing sees through declaration order: same canonical
  // design, same key, byte-identical payload.
  EXPECT_EQ(second, first);
  EXPECT_EQ(server.stats_snapshot().cache_hits, 1u);
}

TEST(ServerTest, EightConcurrentClientsGetConsistentResponses) {
  ServerOptions opt = quiet_options();
  opt.max_queue = 32;
  opt.cache_entries = 0;  // force every job through the search
  Server server(opt);
  server.start();

  constexpr int kClients = 8;
  std::vector<std::string> lines(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back([&, i] {
      // Two distinct designs interleaved; ids are distinct per client but
      // excluded from the payload bytes under comparison.
      const PartitionRequest req = (i % 2 == 0)
                                       ? small_request("s" + std::to_string(i))
                                       : receiver_request("r" + std::to_string(i));
      lines[static_cast<std::size_t>(i)] =
          raw_exchange(server.port(), partition_request_json(req));
    });
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    // Append form: GCC 12's -Wrestrict misfires on the operator+ chain at
    // -O2 (PR 105329), breaking -Werror builds.
    std::string id = (i % 2 == 0 ? "s" : "r");
    id += std::to_string(i);
    const std::string payload = result_payload(lines[static_cast<std::size_t>(i)], id);
    ASSERT_FALSE(payload.empty()) << lines[static_cast<std::size_t>(i)];
    // Every client running the same design must see identical bytes.
    const std::string reference = result_payload(
        lines[i % 2 == 0 ? 0u : 1u], i % 2 == 0 ? "s0" : "r1");
    EXPECT_EQ(payload, reference) << "client " << i;
  }
  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ServerTest, OverCapacityBurstIsRejectedWithoutWedging) {
  ServerOptions opt = quiet_options();
  opt.workers = 1;
  opt.max_queue = 1;
  // Collapse the soft `queued` band (high watermark == max_queue): this
  // test is about the *hard* reject path staying prompt under a burst.
  opt.high_watermark = 1;
  opt.cache_entries = 0;
  Server server(opt);
  server.start();

  constexpr int kBurst = 10;
  std::atomic<int> ok{0}, overloaded{0}, other{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kBurst; ++i)
    clients.emplace_back([&, i] {
      Client client("127.0.0.1", server.port());
      const ClientResponse resp =
          client.submit(small_request("b" + std::to_string(i), 500'000));
      if (resp.ok)
        ++ok;
      else if (resp.error_code == "overloaded")
        ++overloaded;
      else
        ++other;
    });
  for (std::thread& t : clients) t.join();

  // One worker and one queue slot against ten simultaneous submissions:
  // some jobs complete, the overflow is rejected, nothing crashes or hangs.
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_EQ(other, 0);
  EXPECT_GE(overloaded.load(), 1);
  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(ok.load()));
  EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(overloaded.load()));
  server.stop();
  EXPECT_EQ(server.stats_snapshot().queue_depth, 0u);
}

TEST(ServerTest, JobTimeoutReturnsTimeoutError) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  PartitionRequest req = receiver_request("slow", 100'000'000);
  // A 1ms deadline (armed at admission) is always in the past by the time
  // the search reaches a cancellation point; the job itself takes tens of
  // milliseconds at the very least.
  req.timeout_ms = 1;
  const ClientResponse resp = client.submit(req);
  ASSERT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "timeout");
  EXPECT_EQ(server.stats_snapshot().timed_out, 1u);
}

TEST(ServerTest, ServerDefaultTimeoutApplies) {
  ServerOptions opt = quiet_options();
  opt.default_timeout_ms = 1;
  Server server(opt);
  server.start();
  Client client("127.0.0.1", server.port());
  const ClientResponse resp =
      client.submit(receiver_request("slow-default", 100'000'000));
  ASSERT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "timeout");
}

TEST(ServerTest, BadRequestsGetTypedErrors) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());

  // Malformed JSON line.
  {
    TcpStream stream = TcpStream::connect("127.0.0.1", server.port());
    stream.write_all("this is not json\n");
    const std::optional<std::string> line = stream.read_line();
    ASSERT_TRUE(line.has_value());
    const json::Value doc = json::parse(*line);
    EXPECT_FALSE(doc.at("ok").as_bool());
    EXPECT_EQ(doc.at("error").at("code").as_string(), "bad_request");
  }
  // Unknown device name.
  {
    PartitionRequest req = small_request("bad-dev");
    req.budget.reset();
    req.device = "XC9NOPE";
    const ClientResponse resp = client.submit(req);
    ASSERT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_code, "bad_request");
  }
  // Invalid design XML.
  {
    PartitionRequest req = small_request("bad-xml");
    req.design_xml = "<not a design>";
    const ClientResponse resp = client.submit(req);
    ASSERT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_code, "bad_request");
  }
  // Structurally valid but hopeless budget.
  {
    PartitionRequest req = small_request("tiny");
    req.budget = ResourceVec{10, 0, 0};
    const ClientResponse resp = client.submit(req);
    ASSERT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_code, "infeasible");
  }
  // The connection survives all of the above.
  EXPECT_TRUE(client.ping().ok);
}

TEST(ServerTest, DrainCompletesAdmittedJobs) {
  ServerOptions opt = quiet_options();
  opt.workers = 2;
  opt.cache_entries = 0;
  Server server(opt);
  server.start();

  constexpr int kJobs = 4;
  std::atomic<int> ok{0}, overloaded{0}, other{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kJobs; ++i)
    clients.emplace_back([&, i] {
      Client client("127.0.0.1", server.port());
      const ClientResponse resp =
          client.submit(small_request("d" + std::to_string(i), 400'000));
      if (resp.ok)
        ++ok;
      else if (resp.error_code == "overloaded")
        ++overloaded;
      else
        ++other;
    });
  // Let the jobs get admitted, then drain while they are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  for (std::thread& t : clients) t.join();

  // Every admitted job got a real response; anything that arrived after the
  // drain began was rejected as overloaded — never dropped.
  EXPECT_EQ(ok + overloaded, kJobs);
  EXPECT_EQ(other, 0);
  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(ok.load()));
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST(ServerTest, StatsRequestReportsCounters) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.submit(small_request("one")).ok);
  const ClientResponse resp = client.stats();
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.result.at("accepted").as_u64(), 1u);
  EXPECT_EQ(resp.result.at("completed").as_u64(), 1u);
  EXPECT_EQ(resp.result.at("latency_count").as_u64(), 1u);
  EXPECT_GE(resp.result.at("p99_latency_us").as_u64(),
            resp.result.at("p50_latency_us").as_u64());
}

SimulateRequest simulate_request(const std::string& id,
                                 std::uint64_t steps = 200) {
  SimulateRequest req;
  req.partition = receiver_request(id);
  req.params.steps = steps;
  req.params.seed = 3;
  return req;
}

TEST(ServerTest, SimulateJobReturnsLatencies) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const ClientResponse resp = client.simulate(simulate_request("sim1"));
  ASSERT_TRUE(resp.ok) << resp.error_message;
  EXPECT_EQ(resp.result.at("trace").at("source").as_string(), "markov");
  EXPECT_EQ(resp.result.at("trace").at("transitions").as_u64(), 200u);
  const json::Value& row = resp.result.at("schemes").items().at(0);
  EXPECT_EQ(row.at("label").as_string(), "proposed");
  EXPECT_EQ(row.at("transitions").as_u64(), 200u);
  EXPECT_GT(row.at("frames_loaded").as_u64(), 0u);
  EXPECT_GT(row.at("p99_latency_ns").as_u64(), 0u);

  // The stats surface the simulation counters.
  const ClientResponse stats = client.stats();
  ASSERT_TRUE(stats.ok);
  const json::Value& sim = stats.result.at("simulate");
  EXPECT_EQ(sim.at("simulations").as_u64(), 1u);
  EXPECT_EQ(sim.at("transitions").as_u64(), 200u);
  EXPECT_EQ(sim.at("frames_loaded").as_u64(), row.at("frames_loaded").as_u64());
}

TEST(ServerTest, SimulateResponseMatchesOneShotCliByteForByte) {
  // The CLI's `simulate --json` and the server's simulate payload share one
  // encoder and one trace construction; the bytes must agree exactly.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::temp_directory_path() /
                       ("prpart_server_test_" + std::to_string(::getpid()) +
                        "_" + info->name());
  fs::create_directories(dir);
  const std::string design_path = (dir / "receiver.xml").string();
  {
    std::ofstream f(design_path);
    f << design_to_xml(synth::wireless_receiver_design());
  }
  std::ostringstream cli_out, cli_err;
  const int code = cli::run({"simulate", design_path, "--budget",
                             "6800,64,150", "--evals", std::to_string(kEvals),
                             "--steps", "200", "--seed", "3", "--json"},
                            cli_out, cli_err);
  ASSERT_EQ(code, 0) << cli_err.str();
  std::string expected = cli_out.str();
  ASSERT_FALSE(expected.empty());
  expected.pop_back();  // trailing newline

  Server server(quiet_options());
  server.start();
  const std::string line = raw_exchange(
      server.port(), simulate_request_json(simulate_request("sim-twin")));
  EXPECT_EQ(result_payload(line, "sim-twin"), expected);
  fs::remove_all(dir);
}

TEST(ServerTest, SimulateCacheHitIsByteIdentical) {
  Server server(quiet_options());
  server.start();
  const json::Value request =
      simulate_request_json(simulate_request("simc"));
  const std::string cold = raw_exchange(server.port(), request);
  const std::string warm = raw_exchange(server.port(), request);
  EXPECT_EQ(cold, warm);
  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.cache_hits, 1u);
  // A cache hit does not re-run the simulator.
  EXPECT_EQ(stats.simulations, 1u);

  // Same partition target, different trace knobs: a distinct cache entry.
  SimulateRequest other = simulate_request("simc2");
  other.params.seed = 99;
  const std::string reseeded =
      raw_exchange(server.port(), simulate_request_json(other));
  EXPECT_NE(result_payload(cold, "simc"), result_payload(reseeded, "simc2"));
  EXPECT_EQ(server.stats_snapshot().simulations, 2u);
}

TEST(ServerTest, SimulateRejectsSingleConfigurationDesigns) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  SimulateRequest req;
  req.partition.id = "sim-one";
  std::vector<Module> modules = {{"M", {{"M1", {100, 0, 0}}}}};
  std::vector<Configuration> configs = {{"Only", {1}}};
  req.partition.design_xml = design_to_xml(
      Design("mono", {10, 0, 0}, std::move(modules), std::move(configs)));
  const ClientResponse resp = client.simulate(req);
  ASSERT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "bad_request");
}

FloorplanRequest floorplan_request(const std::string& id) {
  FloorplanRequest req;
  req.partition = receiver_request(id);
  return req;
}

TEST(ServerTest, FloorplanJobReturnsRankingAndWinner) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  const ClientResponse resp = client.floorplan(floorplan_request("fp1"));
  ASSERT_TRUE(resp.ok) << resp.error_message;
  EXPECT_TRUE(resp.result.at("feasible").as_bool());
  // Budget-targeted job: `device` names the explicit partition target only
  // (same convention as partition/simulate payloads), so it is null here
  // even though a library device was resolved for placement.
  EXPECT_TRUE(resp.result.at("device").is_null());
  EXPECT_GE(resp.result.at("candidates").as_u64(), 1u);
  const json::Value& top = resp.result.at("ranked").items().at(0);
  EXPECT_FALSE(top.at("vetoed").as_bool());
  EXPECT_GE(top.at("placement_total").as_u64(),
            top.at("estimated_total").as_u64());
  EXPECT_TRUE(resp.result.at("winner").is_object());

  // The stats surface the floorplan counters.
  const ClientResponse stats = client.stats();
  ASSERT_TRUE(stats.ok);
  const json::Value& fp = stats.result.at("floorplan");
  EXPECT_EQ(fp.at("passes").as_u64(), 1u);
  EXPECT_EQ(fp.at("candidates").as_u64(), resp.result.at("candidates").as_u64());
  EXPECT_EQ(fp.at("vetoes").as_u64(), resp.result.at("vetoed").as_u64());
}

TEST(ServerTest, FloorplanResponseMatchesOneShotCliByteForByte) {
  // `prpart floorplan --json` and the server's floorplan payload share one
  // encoder and one re-rank pass; the bytes must agree exactly.
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::temp_directory_path() /
                       ("prpart_server_test_" + std::to_string(::getpid()) +
                        "_" + info->name());
  fs::create_directories(dir);
  const std::string design_path = (dir / "receiver.xml").string();
  {
    std::ofstream f(design_path);
    f << design_to_xml(synth::wireless_receiver_design());
  }
  std::ostringstream cli_out, cli_err;
  const int code = cli::run({"floorplan", design_path, "--budget",
                             "6800,64,150", "--evals", std::to_string(kEvals),
                             "--json"},
                            cli_out, cli_err);
  ASSERT_EQ(code, 0) << cli_err.str();
  std::string expected = cli_out.str();
  ASSERT_FALSE(expected.empty());
  expected.pop_back();  // trailing newline

  Server server(quiet_options());
  server.start();
  const std::string line = raw_exchange(
      server.port(), floorplan_request_json(floorplan_request("fp-twin")));
  EXPECT_EQ(result_payload(line, "fp-twin"), expected);
  fs::remove_all(dir);
}

TEST(ServerTest, FloorplanCacheHitIsByteIdentical) {
  Server server(quiet_options());
  server.start();
  const json::Value request =
      floorplan_request_json(floorplan_request("fpc"));
  const std::string cold = raw_exchange(server.port(), request);
  const std::string warm = raw_exchange(server.port(), request);
  EXPECT_EQ(cold, warm);
  StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.cache_hits, 1u);
  // A cache hit does not re-run the placement pass.
  EXPECT_EQ(stats.floorplans, 1u);

  // Same partition target, different re-rank knobs: a distinct cache entry.
  FloorplanRequest other = floorplan_request("fpc2");
  other.params.top_k = 2;
  const std::string retuned =
      raw_exchange(server.port(), floorplan_request_json(other));
  EXPECT_NE(result_payload(cold, "fpc"), result_payload(retuned, "fpc2"));
  EXPECT_EQ(server.stats_snapshot().floorplans, 2u);
}

TEST(ServerTest, SimulateWithFloorplanReplaysPlacementTrueFrames) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  SimulateRequest plain = simulate_request("sim-plain");
  SimulateRequest placed = simulate_request("sim-placed");
  placed.params.floorplan = true;
  const ClientResponse plain_resp = client.simulate(plain);
  const ClientResponse placed_resp = client.simulate(placed);
  ASSERT_TRUE(plain_resp.ok) << plain_resp.error_message;
  ASSERT_TRUE(placed_resp.ok) << placed_resp.error_message;
  // Placement-true frame counts dominate the estimates, so the replay
  // loads at least as many frames.
  const json::Value& plain_row = plain_resp.result.at("schemes").items().at(0);
  const json::Value& placed_row =
      placed_resp.result.at("schemes").items().at(0);
  EXPECT_GE(placed_row.at("frames_loaded").as_u64(),
            plain_row.at("frames_loaded").as_u64());
  // The placement pass ran exactly once (the plain job skips it), and the
  // two jobs landed in distinct cache entries.
  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.floorplans, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 2u);
}

TEST(ServerTest, PipelinedRequestsAnswerOutOfOrderById) {
  ServerOptions opt = quiet_options();
  opt.workers = 1;
  opt.cache_entries = 0;
  Server server(opt);
  server.start();

  // One connection, three requests in a single write: a slow partition
  // followed by two pings. The pings are answered inline by the admission
  // workers while the search still runs, so they overtake the job — the
  // client matches responses by id, not arrival order.
  TcpStream stream = TcpStream::connect("127.0.0.1", server.port());
  std::string burst =
      partition_request_json(small_request("slow", 2'000'000)).dump() + "\n";
  burst += "{\"type\":\"ping\",\"id\":\"p1\"}\n";
  burst += "{\"type\":\"ping\",\"id\":\"p2\"}\n";
  stream.write_all(burst);

  std::vector<std::string> order;
  std::string slow_line;
  for (int i = 0; i < 3; ++i) {
    const std::optional<std::string> line = stream.read_line();
    ASSERT_TRUE(line.has_value());
    const json::Value doc = json::parse(*line);
    order.push_back(doc.at("id").as_string());
    if (order.back() == "slow") slow_line = *line;
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), "slow") << "search should finish after the pings";
  EXPECT_FALSE(result_payload(slow_line, "slow").empty()) << slow_line;
}

TEST(ServerTest, BackpressureQueuedNoticeCarriesPositionAndEta) {
  ServerOptions opt = quiet_options();
  opt.workers = 1;
  opt.max_queue = 1;  // soft band: positions 2..high_watermark get notices
  opt.io_workers = 1;  // admit strictly in arrival order
  opt.cache_entries = 0;
  Server server(opt);
  server.start();

  // Three long jobs pipelined on one connection: with a single worker and a
  // single firm queue slot, at least the third lands beyond max_queue and
  // draws an interim `queued` envelope before its final response.
  TcpStream stream = TcpStream::connect("127.0.0.1", server.port());
  std::string burst;
  for (int i = 0; i < 3; ++i) {
    PartitionRequest req = small_request("q" + std::to_string(i), 300'000);
    req.options.search.max_move_evaluations += std::uint64_t(i);  // no cache
    burst += partition_request_json(req).dump() + "\n";
  }
  stream.write_all(burst);

  int finals = 0;
  int notices = 0;
  while (finals < 3) {
    const std::optional<std::string> line = stream.read_line();
    ASSERT_TRUE(line.has_value());
    const json::Value doc = json::parse(*line);
    if (!doc.find("ok") && doc.find("queued")) {
      ++notices;
      const json::Value& q = doc.at("queued");
      EXPECT_GT(q.at("position").as_u64(), opt.max_queue);
      EXPECT_TRUE(q.find("eta_ms") != nullptr) << *line;
      continue;
    }
    EXPECT_TRUE(doc.at("ok").as_bool()) << *line;
    ++finals;
  }
  EXPECT_GE(notices, 1);
  EXPECT_GE(server.stats_snapshot().queued_notices, std::uint64_t(notices));
}

TEST(ServerTest, ClientSkipsQueuedNoticesTransparently) {
  ServerOptions opt = quiet_options();
  opt.workers = 1;
  opt.max_queue = 1;
  opt.cache_entries = 0;
  Server server(opt);
  server.start();

  // Several serial clients racing one worker: whoever lands deep in the
  // soft band sees a notice, which Client::exchange skips silently.
  constexpr int kClients = 6;
  std::atomic<int> ok{0};
  std::atomic<std::uint64_t> notices{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i)
    threads.emplace_back([&, i] {
      Client client("127.0.0.1", server.port());
      const ClientResponse resp =
          client.submit(small_request("cq" + std::to_string(i), 200'000 + i));
      if (resp.ok) ++ok;
      notices.fetch_add(client.queued_notices_seen());
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients);  // soft band absorbs the burst: no rejects
  EXPECT_EQ(server.stats_snapshot().queued_notices, notices.load());
}

TEST(ServerTest, MetricsRequestReportsServerAndStoreState) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.submit(small_request("m1")).ok);
  const ClientResponse resp = client.metrics("m");
  ASSERT_TRUE(resp.ok) << resp.error_message;
  const json::Value& srv = resp.result.at("server");
  EXPECT_EQ(srv.at("io_mode").as_string(), "epoll");
  EXPECT_GE(srv.at("connections").as_u64(), 1u);  // this client
  EXPECT_GE(srv.at("connections_total").as_u64(), 1u);
  EXPECT_EQ(srv.at("admission_depth").as_u64(), 0u);
  // The jobs section is the full stats snapshot.
  EXPECT_EQ(resp.result.at("jobs").at("completed").as_u64(), 1u);
  const json::Value& store = resp.result.at("store");
  EXPECT_EQ(store.at("ram_entries").as_u64(), 1u);
  EXPECT_FALSE(store.at("disk_enabled").as_bool());
  EXPECT_EQ(store.at("disk_entries").as_u64(), 0u);
}

TEST(ServerTest, MetricsTextFormatIsFlatKeyValueLines) {
  Server server(quiet_options());
  server.start();
  Client client("127.0.0.1", server.port());
  ASSERT_TRUE(client.ping().ok);
  const ClientResponse resp = client.metrics("mt", /*text=*/true);
  ASSERT_TRUE(resp.ok) << resp.error_message;
  // The text exposition rides inside the JSON envelope as one string.
  const std::string text = resp.result.as_string();
  EXPECT_NE(text.find("# prpart_server_io_mode epoll"), std::string::npos)
      << text;
  EXPECT_NE(text.find("prpart_jobs_completed 0"), std::string::npos) << text;
  EXPECT_NE(text.find("prpart_store_ram_entries 0"), std::string::npos)
      << text;
}

TEST(ServerTest, WarmRestartServesFromDiskWithoutRerunningTheSearch) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::temp_directory_path() /
                       ("prpart_server_test_" + std::to_string(::getpid()) +
                        "_" + info->name());
  fs::create_directories(dir);
  const json::Value request = partition_request_json(small_request("gen1"));

  ServerOptions opt = quiet_options();
  opt.store_dir = (dir / "store").string();
  std::string cold;
  {
    Server server(opt);
    server.start();
    cold = raw_exchange(server.port(), request);
    server.stop();  // graceful drain flushes the RAM store to disk
  }
  ASSERT_FALSE(result_payload(cold, "gen1").empty()) << cold;

  // A brand-new process image (fresh Server, same directory): the warm
  // store answers byte-identically without admitting a job or searching.
  Server restarted(opt);
  restarted.start();
  const std::string warm = raw_exchange(restarted.port(), request);
  EXPECT_EQ(warm, cold);
  const StatsSnapshot stats = restarted.stats_snapshot();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.search_move_evaluations, 0u);
  Client client("127.0.0.1", restarted.port());
  const ClientResponse metrics = client.metrics();
  ASSERT_TRUE(metrics.ok);
  EXPECT_TRUE(metrics.result.at("store").at("disk_enabled").as_bool());
  EXPECT_GE(metrics.result.at("store").at("disk_hits").as_u64(), 1u);
  restarted.stop();
  fs::remove_all(dir);
}

TEST(ServerTest, ThousandPipelinedClientsAreServedInOneProcess) {
  ServerOptions opt = quiet_options();
  opt.workers = 2;
  Server server(opt);
  server.start();

  // Warm the result store so the partition below is a cache hit for every
  // client: this test is about connection scale, not search throughput.
  ASSERT_FALSE(raw_exchange(server.port(),
                            partition_request_json(small_request("warm")))
                   .empty());

  // 1024 sockets held open at once, each with 3 pipelined requests written
  // before any response is read — far beyond what thread-per-connection
  // could hold on this machine's thread budget.
  constexpr int kConns = 1024;
  constexpr int kPerConn = 3;
  std::vector<TcpStream> conns;
  conns.reserve(kConns);
  for (int i = 0; i < kConns; ++i)
    conns.push_back(TcpStream::connect("127.0.0.1", server.port()));
  for (int i = 0; i < kConns; ++i) {
    const std::string tag = std::to_string(i);
    std::string burst = "{\"type\":\"ping\",\"id\":\"a" + tag + "\"}\n";
    burst += partition_request_json(small_request("j" + tag)).dump() + "\n";
    burst += "{\"type\":\"ping\",\"id\":\"b" + tag + "\"}\n";
    conns[static_cast<std::size_t>(i)].write_all(burst);
  }
  std::size_t responses = 0;
  for (int i = 0; i < kConns; ++i) {
    int finals = 0;
    while (finals < kPerConn) {
      const std::optional<std::string> line =
          conns[static_cast<std::size_t>(i)].read_line();
      ASSERT_TRUE(line.has_value()) << "conn " << i;
      const json::Value doc = json::parse(*line);
      if (!doc.find("ok") && doc.find("queued")) continue;
      EXPECT_TRUE(doc.at("ok").as_bool()) << *line;
      ++finals;
      ++responses;
    }
  }
  EXPECT_EQ(responses, static_cast<std::size_t>(kConns) * kPerConn);
  const StatsSnapshot stats = server.stats_snapshot();
  EXPECT_EQ(stats.cache_hits, static_cast<std::uint64_t>(kConns));
  Client client("127.0.0.1", server.port());
  const ClientResponse metrics = client.metrics();
  ASSERT_TRUE(metrics.ok);
  EXPECT_GE(metrics.result.at("server").at("connections_total").as_u64(),
            static_cast<std::uint64_t>(kConns));
}

TEST(ServerTest, LegacyIoModeStillServes) {
  ServerOptions opt = quiet_options();
  opt.legacy_io = true;
  Server server(opt);
  server.start();
  const json::Value request = partition_request_json(small_request("leg"));
  const std::string cold = raw_exchange(server.port(), request);
  const std::string warm = raw_exchange(server.port(), request);
  EXPECT_EQ(warm, cold);
  EXPECT_FALSE(result_payload(cold, "leg").empty()) << cold;
  Client client("127.0.0.1", server.port());
  const ClientResponse metrics = client.metrics();
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.result.at("server").at("io_mode").as_string(), "threads");
  server.stop();
}

TEST(ServerTest, ReactorAndLegacyModesAnswerByteIdentically) {
  // The tentpole refactor must be invisible on the wire: both I/O layers
  // splice the same payload bytes into the same envelope.
  const json::Value request = partition_request_json(small_request("xio"));
  std::string epoll_line, legacy_line;
  {
    Server server(quiet_options());
    server.start();
    epoll_line = raw_exchange(server.port(), request);
  }
  {
    ServerOptions opt = quiet_options();
    opt.legacy_io = true;
    Server server(opt);
    server.start();
    legacy_line = raw_exchange(server.port(), request);
  }
  EXPECT_EQ(epoll_line, legacy_line);
}

TEST(ServerTest, ServeCommandDrainsOnSigtermAndExitsZero) {
  // End to end through the CLI: `prpart serve` must install its handlers,
  // serve clients, and exit 0 on SIGTERM.
  constexpr const char* kPort = "29787";
  std::ostringstream out, err;
  int code = -1;
  std::thread serve([&] {
    code = cli::run({"serve", "--port", kPort, "--workers", "1"}, out, err);
  });

  // Wait for the listener, prove it serves, then signal the drain.
  bool pinged = false;
  for (int attempt = 0; attempt < 100 && !pinged; ++attempt) {
    try {
      Client client("127.0.0.1", 29787);
      pinged = client.ping().ok;
    } catch (const SocketError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_TRUE(pinged) << err.str();
  std::raise(SIGTERM);
  serve.join();
  EXPECT_EQ(code, 0) << err.str();
  EXPECT_NE(err.str().find("drained:"), std::string::npos);
}

}  // namespace
}  // namespace prpart::server
