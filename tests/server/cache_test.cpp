#include "server/cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace prpart::server {
namespace {

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.lookup("k").has_value());
  cache.store("k", "payload");
  EXPECT_EQ(cache.lookup("k"), "payload");
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResultCacheTest, StoreRefreshesExistingEntry) {
  ResultCache cache(4);
  cache.store("k", "old");
  cache.store("k", "new");
  EXPECT_EQ(cache.lookup("k"), "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.store("a", "1");
  cache.store("b", "2");
  cache.store("c", "3");  // evicts a
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, LookupRefreshesRecency) {
  ResultCache cache(2);
  cache.store("a", "1");
  cache.store("b", "2");
  EXPECT_TRUE(cache.lookup("a").has_value());  // a is now most recent
  cache.store("c", "3");                       // evicts b, not a
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.store("k", "payload");
  EXPECT_FALSE(cache.lookup("k").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, ConcurrentMixedAccessIsSafe) {
  ResultCache cache(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t + i) % 12);
        cache.store(key, "v");
        (void)cache.lookup(key);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.stats().entries, 8u);
}

}  // namespace
}  // namespace prpart::server
