#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart::server {
namespace {

Design small_design() {
  std::vector<Module> modules = {
      {"Filter", {{"LowPass", {120, 4, 2}}, {"HighPass", {150, 2, 6}}}},
      {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
  };
  std::vector<Configuration> configs = {
      {"Receive", {1, 2}},
      {"Transmit", {2, 1}},
  };
  return Design("radio", {40, 1, 0}, std::move(modules), std::move(configs));
}

TEST(ProtocolTest, ErrorCodeNames) {
  EXPECT_STREQ(error_code_name(ErrorCode::BadRequest), "bad_request");
  EXPECT_STREQ(error_code_name(ErrorCode::Infeasible), "infeasible");
  EXPECT_STREQ(error_code_name(ErrorCode::Timeout), "timeout");
  EXPECT_STREQ(error_code_name(ErrorCode::Overloaded), "overloaded");
  EXPECT_STREQ(error_code_name(ErrorCode::Internal), "internal");
}

TEST(ProtocolTest, ParsesPingAndStats) {
  const Request ping = parse_request("{\"type\":\"ping\",\"id\":\"p1\"}");
  EXPECT_EQ(ping.type, Request::Type::Ping);
  EXPECT_EQ(ping.id, "p1");
  const Request stats = parse_request("{\"type\":\"stats\"}");
  EXPECT_EQ(stats.type, Request::Type::Stats);
  EXPECT_EQ(stats.id, "");
}

TEST(ProtocolTest, PartitionRequestDefaultsMatchTheCli) {
  const Request r = parse_request(
      "{\"type\":\"partition\",\"id\":\"j\",\"design_xml\":\"<x/>\"}");
  ASSERT_EQ(r.type, Request::Type::Partition);
  const PartitionerOptions defaults = default_partitioner_options();
  EXPECT_EQ(r.partition.options.search.max_candidate_sets,
            defaults.search.max_candidate_sets);
  EXPECT_EQ(r.partition.options.search.max_move_evaluations,
            defaults.search.max_move_evaluations);
  EXPECT_EQ(r.partition.options.search.threads, 0u);
  EXPECT_EQ(r.partition.timeout_ms, 0u);
  EXPECT_EQ(r.partition.target_string(), "auto");
}

TEST(ProtocolTest, PartitionRequestAllFields) {
  const Request r = parse_request(
      "{\"type\":\"partition\",\"id\":\"j2\",\"design_xml\":\"<x/>\","
      "\"device\":\"XC5VLX30T\",\"candidate_sets\":7,\"evals\":1234,"
      "\"threads\":3,\"timeout_ms\":250}");
  EXPECT_EQ(r.partition.device, "XC5VLX30T");
  EXPECT_EQ(r.partition.options.search.max_candidate_sets, 7u);
  EXPECT_EQ(r.partition.options.search.max_move_evaluations, 1234u);
  EXPECT_EQ(r.partition.options.search.threads, 3u);
  EXPECT_EQ(r.partition.timeout_ms, 250u);
  EXPECT_EQ(r.partition.target_string(), "device XC5VLX30T");
}

TEST(ProtocolTest, BudgetTripleParses) {
  const Request r = parse_request(
      "{\"type\":\"partition\",\"design_xml\":\"<x/>\","
      "\"budget\":[100,20,30]}");
  ASSERT_TRUE(r.partition.budget.has_value());
  EXPECT_EQ(r.partition.budget->clbs, 100u);
  EXPECT_EQ(r.partition.budget->brams, 20u);
  EXPECT_EQ(r.partition.budget->dsps, 30u);
  EXPECT_EQ(r.partition.target_string(), "budget 100,20,30");
}

TEST(ProtocolTest, AnalyzeRequestParses) {
  const Request r = parse_request(
      "{\"type\":\"analyze\",\"id\":\"a1\",\"design_xml\":\"<x/>\"}");
  ASSERT_EQ(r.type, Request::Type::Analyze);
  EXPECT_EQ(r.analyze.id, "a1");
  EXPECT_EQ(r.analyze.design_xml, "<x/>");
  EXPECT_TRUE(r.analyze.device.empty());
  EXPECT_FALSE(r.analyze.budget.has_value());
}

TEST(ProtocolTest, AnalyzeRequestWithTargets) {
  const Request dev = parse_request(
      "{\"type\":\"analyze\",\"design_xml\":\"<x/>\","
      "\"device\":\"XC5VLX30\"}");
  EXPECT_EQ(dev.analyze.device, "XC5VLX30");

  const Request bud = parse_request(
      "{\"type\":\"analyze\",\"design_xml\":\"<x/>\","
      "\"budget\":[100,20,30]}");
  ASSERT_TRUE(bud.analyze.budget.has_value());
  EXPECT_EQ(bud.analyze.budget->clbs, 100u);
  EXPECT_EQ(bud.analyze.budget->brams, 20u);
  EXPECT_EQ(bud.analyze.budget->dsps, 30u);
}

TEST(ProtocolTest, MalformedAnalyzeRequestsThrow) {
  // No design.
  EXPECT_THROW(parse_request("{\"type\":\"analyze\"}"), ParseError);
  EXPECT_THROW(parse_request("{\"type\":\"analyze\",\"design_xml\":\"\"}"),
               ParseError);
  // Unknown fields fail loudly — analyze takes no search options.
  EXPECT_THROW(parse_request("{\"type\":\"analyze\",\"design_xml\":\"<x/>\","
                             "\"evals\":1}"),
               ParseError);
  // Conflicting targets.
  EXPECT_THROW(parse_request("{\"type\":\"analyze\",\"design_xml\":\"<x/>\","
                             "\"device\":\"D\",\"budget\":[1,2,3]}"),
               ParseError);
  // Budget must be a triple.
  EXPECT_THROW(parse_request("{\"type\":\"analyze\",\"design_xml\":\"<x/>\","
                             "\"budget\":[1]}"),
               ParseError);
}

TEST(ProtocolTest, MalformedRequestsThrow) {
  EXPECT_THROW(parse_request("not json"), ParseError);
  EXPECT_THROW(parse_request("[1]"), ParseError);
  EXPECT_THROW(parse_request("{\"id\":\"x\"}"), ParseError);  // no type
  EXPECT_THROW(parse_request("{\"type\":\"bogus\"}"), ParseError);
  // Partition without a design.
  EXPECT_THROW(parse_request("{\"type\":\"partition\"}"), ParseError);
  EXPECT_THROW(
      parse_request("{\"type\":\"partition\",\"design_xml\":\"\"}"),
      ParseError);
  // Unknown fields fail loudly instead of being ignored.
  EXPECT_THROW(parse_request("{\"type\":\"partition\",\"design_xml\":\"<x/>\","
                             "\"evalz\":1}"),
               ParseError);
  // Conflicting targets.
  EXPECT_THROW(parse_request("{\"type\":\"partition\",\"design_xml\":\"<x/>\","
                             "\"device\":\"D\",\"budget\":[1,2,3]}"),
               ParseError);
  // Budget must be a triple.
  EXPECT_THROW(parse_request("{\"type\":\"partition\",\"design_xml\":\"<x/>\","
                             "\"budget\":[1,2]}"),
               ParseError);
}

TEST(ProtocolTest, OkResponseSplicesThePayloadVerbatim) {
  const std::string payload = "{\"x\":1,\"y\":[true,null]}";
  const std::string line = ok_response("req-1", payload);
  EXPECT_EQ(line, "{\"id\":\"req-1\",\"ok\":true,\"result\":" + payload + "}");
  const json::Value doc = json::parse(line);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("result").dump(), payload);
}

TEST(ProtocolTest, ErrorResponseShape) {
  const json::Value doc =
      json::parse(error_response("req-2", ErrorCode::Overloaded, "full"));
  EXPECT_EQ(doc.at("id").as_string(), "req-2");
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(doc.at("error").at("message").as_string(), "full");
}

TEST(ProtocolTest, ResultJsonFeasibleShape) {
  const Design design = small_design();
  PartitionerOptions options = default_partitioner_options();
  options.search.max_move_evaluations = 100'000;
  // Tight enough that the fully-static implementation cannot fit, forcing a
  // scheme with at least one reconfigurable region.
  const ResourceVec budget{400, 30, 12};
  const PartitionerResult result = partition_design(design, budget, options);
  ASSERT_TRUE(result.feasible);

  const json::Value v = partition_result_json(design, result, "", budget);
  EXPECT_EQ(v.at("design").as_string(), "radio");
  EXPECT_TRUE(v.at("device").is_null());
  EXPECT_TRUE(v.at("feasible").as_bool());
  EXPECT_EQ(v.at("budget").at("clbs").as_u64(), 400u);
  const json::Value& proposed = v.at("proposed");
  EXPECT_GT(proposed.at("total_frames").as_u64(), 0u);
  EXPECT_GE(proposed.at("regions").items().size(), 1u);
  for (const char* name : {"modular", "single_region", "static"})
    EXPECT_TRUE(v.at("baselines").at(name).is_object()) << name;
  // Only the deterministic core of the stats: scheduling-dependent counters
  // would break byte-identity across thread counts.
  EXPECT_EQ(v.at("stats").find("units_replayed"), nullptr);
  EXPECT_EQ(v.at("stats").find("cache_hits"), nullptr);
  EXPECT_GT(v.at("stats").at("move_evaluations").as_u64(), 0u);
}

TEST(ProtocolTest, ResultJsonInfeasibleShape) {
  const Design design = small_design();
  const ResourceVec budget{10, 0, 0};
  const PartitionerResult result =
      partition_design(design, budget, default_partitioner_options());
  ASSERT_FALSE(result.feasible);
  const json::Value v = partition_result_json(design, result, "", budget);
  EXPECT_FALSE(v.at("feasible").as_bool());
  EXPECT_TRUE(v.at("proposed").is_null());
  EXPECT_GT(v.at("lower_bound").at("clbs").as_u64(), 0u);
}

TEST(ProtocolTest, ResultJsonIsDeterministic) {
  const Design design = small_design();
  PartitionerOptions options = default_partitioner_options();
  options.search.max_move_evaluations = 100'000;
  const ResourceVec budget{4000, 60, 60};
  const std::string a =
      partition_result_json(design, partition_design(design, budget, options),
                            "", budget)
          .dump();
  options.search.threads = 4;
  const std::string b =
      partition_result_json(design, partition_design(design, budget, options),
                            "", budget)
          .dump();
  EXPECT_EQ(a, b);  // thread count must not leak into the encoding
}

}  // namespace
}  // namespace prpart::server
