#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/status.hpp"

namespace prpart::server {
namespace {

Design small_design() {
  std::vector<Module> modules = {
      {"Filter", {{"LowPass", {120, 4, 2}}, {"HighPass", {150, 2, 6}}}},
      {"Codec", {{"Fast", {80, 8, 0}}, {"Dense", {60, 12, 1}}}},
  };
  std::vector<Configuration> configs = {
      {"Receive", {1, 2}},
      {"Transmit", {2, 1}},
  };
  return Design("radio", {40, 1, 0}, std::move(modules), std::move(configs));
}

TEST(ProtocolTest, ErrorCodeNames) {
  EXPECT_STREQ(error_code_name(ErrorCode::BadRequest), "bad_request");
  EXPECT_STREQ(error_code_name(ErrorCode::Infeasible), "infeasible");
  EXPECT_STREQ(error_code_name(ErrorCode::Timeout), "timeout");
  EXPECT_STREQ(error_code_name(ErrorCode::Overloaded), "overloaded");
  EXPECT_STREQ(error_code_name(ErrorCode::Internal), "internal");
}

TEST(ProtocolTest, ParsesPingAndStats) {
  const Request ping = parse_request("{\"type\":\"ping\",\"id\":\"p1\"}");
  EXPECT_EQ(ping.type, Request::Type::Ping);
  EXPECT_EQ(ping.id, "p1");
  const Request stats = parse_request("{\"type\":\"stats\"}");
  EXPECT_EQ(stats.type, Request::Type::Stats);
  EXPECT_EQ(stats.id, "");
}

TEST(ProtocolTest, PartitionRequestDefaultsMatchTheCli) {
  const Request r = parse_request(
      "{\"type\":\"partition\",\"id\":\"j\",\"design_xml\":\"<x/>\"}");
  ASSERT_EQ(r.type, Request::Type::Partition);
  const PartitionerOptions defaults = default_partitioner_options();
  EXPECT_EQ(r.partition.options.search.max_candidate_sets,
            defaults.search.max_candidate_sets);
  EXPECT_EQ(r.partition.options.search.max_move_evaluations,
            defaults.search.max_move_evaluations);
  EXPECT_EQ(r.partition.options.search.threads, 0u);
  EXPECT_EQ(r.partition.timeout_ms, 0u);
  EXPECT_EQ(r.partition.target_string(), "auto");
}

TEST(ProtocolTest, PartitionRequestAllFields) {
  const Request r = parse_request(
      "{\"type\":\"partition\",\"id\":\"j2\",\"design_xml\":\"<x/>\","
      "\"device\":\"XC5VLX30T\",\"candidate_sets\":7,\"evals\":1234,"
      "\"threads\":3,\"timeout_ms\":250}");
  EXPECT_EQ(r.partition.device, "XC5VLX30T");
  EXPECT_EQ(r.partition.options.search.max_candidate_sets, 7u);
  EXPECT_EQ(r.partition.options.search.max_move_evaluations, 1234u);
  EXPECT_EQ(r.partition.options.search.threads, 3u);
  EXPECT_EQ(r.partition.timeout_ms, 250u);
  EXPECT_EQ(r.partition.target_string(), "device XC5VLX30T");
}

TEST(ProtocolTest, BudgetTripleParses) {
  const Request r = parse_request(
      "{\"type\":\"partition\",\"design_xml\":\"<x/>\","
      "\"budget\":[100,20,30]}");
  ASSERT_TRUE(r.partition.budget.has_value());
  EXPECT_EQ(r.partition.budget->clbs, 100u);
  EXPECT_EQ(r.partition.budget->brams, 20u);
  EXPECT_EQ(r.partition.budget->dsps, 30u);
  EXPECT_EQ(r.partition.target_string(), "budget 100,20,30");
}

TEST(ProtocolTest, AnalyzeRequestParses) {
  const Request r = parse_request(
      "{\"type\":\"analyze\",\"id\":\"a1\",\"design_xml\":\"<x/>\"}");
  ASSERT_EQ(r.type, Request::Type::Analyze);
  EXPECT_EQ(r.analyze.id, "a1");
  EXPECT_EQ(r.analyze.design_xml, "<x/>");
  EXPECT_TRUE(r.analyze.device.empty());
  EXPECT_FALSE(r.analyze.budget.has_value());
}

TEST(ProtocolTest, AnalyzeRequestWithTargets) {
  const Request dev = parse_request(
      "{\"type\":\"analyze\",\"design_xml\":\"<x/>\","
      "\"device\":\"XC5VLX30\"}");
  EXPECT_EQ(dev.analyze.device, "XC5VLX30");

  const Request bud = parse_request(
      "{\"type\":\"analyze\",\"design_xml\":\"<x/>\","
      "\"budget\":[100,20,30]}");
  ASSERT_TRUE(bud.analyze.budget.has_value());
  EXPECT_EQ(bud.analyze.budget->clbs, 100u);
  EXPECT_EQ(bud.analyze.budget->brams, 20u);
  EXPECT_EQ(bud.analyze.budget->dsps, 30u);
}

TEST(ProtocolTest, MalformedAnalyzeRequestsThrow) {
  // No design.
  EXPECT_THROW(parse_request("{\"type\":\"analyze\"}"), ParseError);
  EXPECT_THROW(parse_request("{\"type\":\"analyze\",\"design_xml\":\"\"}"),
               ParseError);
  // Unknown fields fail loudly — analyze takes no search options.
  EXPECT_THROW(parse_request("{\"type\":\"analyze\",\"design_xml\":\"<x/>\","
                             "\"evals\":1}"),
               ParseError);
  // Conflicting targets.
  EXPECT_THROW(parse_request("{\"type\":\"analyze\",\"design_xml\":\"<x/>\","
                             "\"device\":\"D\",\"budget\":[1,2,3]}"),
               ParseError);
  // Budget must be a triple.
  EXPECT_THROW(parse_request("{\"type\":\"analyze\",\"design_xml\":\"<x/>\","
                             "\"budget\":[1]}"),
               ParseError);
}

TEST(ProtocolTest, MalformedRequestsThrow) {
  EXPECT_THROW(parse_request("not json"), ParseError);
  EXPECT_THROW(parse_request("[1]"), ParseError);
  EXPECT_THROW(parse_request("{\"id\":\"x\"}"), ParseError);  // no type
  EXPECT_THROW(parse_request("{\"type\":\"bogus\"}"), ParseError);
  // Partition without a design.
  EXPECT_THROW(parse_request("{\"type\":\"partition\"}"), ParseError);
  EXPECT_THROW(
      parse_request("{\"type\":\"partition\",\"design_xml\":\"\"}"),
      ParseError);
  // Unknown fields fail loudly instead of being ignored.
  EXPECT_THROW(parse_request("{\"type\":\"partition\",\"design_xml\":\"<x/>\","
                             "\"evalz\":1}"),
               ParseError);
  // Conflicting targets.
  EXPECT_THROW(parse_request("{\"type\":\"partition\",\"design_xml\":\"<x/>\","
                             "\"device\":\"D\",\"budget\":[1,2,3]}"),
               ParseError);
  // Budget must be a triple.
  EXPECT_THROW(parse_request("{\"type\":\"partition\",\"design_xml\":\"<x/>\","
                             "\"budget\":[1,2]}"),
               ParseError);
}

TEST(ProtocolTest, OkResponseSplicesThePayloadVerbatim) {
  const std::string payload = "{\"x\":1,\"y\":[true,null]}";
  const std::string line = ok_response("req-1", payload);
  EXPECT_EQ(line, "{\"id\":\"req-1\",\"ok\":true,\"result\":" + payload + "}");
  const json::Value doc = json::parse(line);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("result").dump(), payload);
}

TEST(ProtocolTest, ErrorResponseShape) {
  const json::Value doc =
      json::parse(error_response("req-2", ErrorCode::Overloaded, "full"));
  EXPECT_EQ(doc.at("id").as_string(), "req-2");
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(doc.at("error").at("message").as_string(), "full");
}

TEST(ProtocolTest, ResultJsonFeasibleShape) {
  const Design design = small_design();
  PartitionerOptions options = default_partitioner_options();
  options.search.max_move_evaluations = 100'000;
  // Tight enough that the fully-static implementation cannot fit, forcing a
  // scheme with at least one reconfigurable region.
  const ResourceVec budget{400, 30, 12};
  const PartitionerResult result = partition_design(design, budget, options);
  ASSERT_TRUE(result.feasible);

  const json::Value v = partition_result_json(design, result, "", budget);
  EXPECT_EQ(v.at("design").as_string(), "radio");
  EXPECT_TRUE(v.at("device").is_null());
  EXPECT_TRUE(v.at("feasible").as_bool());
  EXPECT_EQ(v.at("budget").at("clbs").as_u64(), 400u);
  const json::Value& proposed = v.at("proposed");
  EXPECT_GT(proposed.at("total_frames").as_u64(), 0u);
  EXPECT_GE(proposed.at("regions").items().size(), 1u);
  for (const char* name : {"modular", "single_region", "static"})
    EXPECT_TRUE(v.at("baselines").at(name).is_object()) << name;
  // Only the deterministic core of the stats: scheduling-dependent counters
  // would break byte-identity across thread counts.
  EXPECT_EQ(v.at("stats").find("units_replayed"), nullptr);
  EXPECT_EQ(v.at("stats").find("cache_hits"), nullptr);
  EXPECT_GT(v.at("stats").at("move_evaluations").as_u64(), 0u);
}

TEST(ProtocolTest, ResultJsonInfeasibleShape) {
  const Design design = small_design();
  const ResourceVec budget{10, 0, 0};
  const PartitionerResult result =
      partition_design(design, budget, default_partitioner_options());
  ASSERT_FALSE(result.feasible);
  const json::Value v = partition_result_json(design, result, "", budget);
  EXPECT_FALSE(v.at("feasible").as_bool());
  EXPECT_TRUE(v.at("proposed").is_null());
  EXPECT_GT(v.at("lower_bound").at("clbs").as_u64(), 0u);
}

TEST(ProtocolTest, ResultJsonIsDeterministic) {
  const Design design = small_design();
  PartitionerOptions options = default_partitioner_options();
  options.search.max_move_evaluations = 100'000;
  const ResourceVec budget{4000, 60, 60};
  const std::string a =
      partition_result_json(design, partition_design(design, budget, options),
                            "", budget)
          .dump();
  options.search.threads = 4;
  const std::string b =
      partition_result_json(design, partition_design(design, budget, options),
                            "", budget)
          .dump();
  EXPECT_EQ(a, b);  // thread count must not leak into the encoding
}

TEST(ProtocolTest, SimulateRequestDefaults) {
  const Request r = parse_request(
      "{\"type\":\"simulate\",\"id\":\"s\",\"design_xml\":\"<x/>\"}");
  ASSERT_EQ(r.type, Request::Type::Simulate);
  EXPECT_EQ(r.simulate.partition.id, "s");
  EXPECT_EQ(r.simulate.partition.target_string(), "auto");
  EXPECT_EQ(r.simulate.params.steps, 100'000u);
  EXPECT_EQ(r.simulate.params.seed, 1u);
  EXPECT_FALSE(r.simulate.params.prefetch);
  EXPECT_FALSE(r.simulate.params.uniform);
  EXPECT_EQ(r.simulate.params.inter_arrival_ns, 0u);
}

TEST(ProtocolTest, SimulateRequestAllFields) {
  const Request r = parse_request(
      "{\"type\":\"simulate\",\"id\":\"s2\",\"design_xml\":\"<x/>\","
      "\"device\":\"XC5VLX30T\",\"evals\":5000,\"steps\":250,\"seed\":9,"
      "\"prefetch\":true,\"uniform\":false,\"inter_arrival_ns\":70000}");
  ASSERT_EQ(r.type, Request::Type::Simulate);
  EXPECT_EQ(r.simulate.partition.device, "XC5VLX30T");
  EXPECT_EQ(r.simulate.partition.options.search.max_move_evaluations, 5000u);
  EXPECT_EQ(r.simulate.params.steps, 250u);
  EXPECT_EQ(r.simulate.params.seed, 9u);
  EXPECT_TRUE(r.simulate.params.prefetch);
  EXPECT_EQ(r.simulate.params.inter_arrival_ns, 70'000u);
}

TEST(ProtocolTest, MalformedSimulateRequestsThrow) {
  // No design.
  EXPECT_THROW(parse_request("{\"type\":\"simulate\"}"), ParseError);
  // A zero-step trace has nothing to replay.
  EXPECT_THROW(parse_request("{\"type\":\"simulate\",\"design_xml\":\"<x/>\","
                             "\"steps\":0}"),
               ParseError);
  // Unknown fields fail loudly here too.
  EXPECT_THROW(parse_request("{\"type\":\"simulate\",\"design_xml\":\"<x/>\","
                             "\"stepz\":5}"),
               ParseError);
  // Trace knobs are rejected on plain partition requests.
  EXPECT_THROW(parse_request("{\"type\":\"partition\",\"design_xml\":\"<x/>\","
                             "\"steps\":10}"),
               ParseError);
}

TEST(ProtocolTest, SimulateCacheStringSeparatesEveryKnob) {
  SimulateParams a;
  std::set<std::string> keys = {a.cache_string()};
  SimulateParams b = a;
  b.steps = 7;
  keys.insert(b.cache_string());
  SimulateParams c = a;
  c.seed = 2;
  keys.insert(c.cache_string());
  SimulateParams d = a;
  d.prefetch = true;
  keys.insert(d.cache_string());
  SimulateParams e = a;
  e.uniform = true;
  keys.insert(e.cache_string());
  SimulateParams f = a;
  f.inter_arrival_ns = 5;
  keys.insert(f.cache_string());
  EXPECT_EQ(keys.size(), 6u);  // every knob lands in the cache key
}

TEST(ProtocolTest, SimulateSetupIsSeedDeterministic) {
  SimulateParams params;
  params.steps = 300;
  params.seed = 4;
  const SimulateSetup a = simulate_setup(5, params);
  const SimulateSetup b = simulate_setup(5, params);
  EXPECT_EQ(a.source, "markov");
  EXPECT_EQ(a.trace.transitions(), 300u);
  EXPECT_EQ(a.trace.configs, b.trace.configs);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(a.env.probability(i, j), b.env.probability(i, j));

  params.seed = 5;
  const SimulateSetup c = simulate_setup(5, params);
  EXPECT_NE(a.trace.configs, c.trace.configs);

  params.uniform = true;
  const SimulateSetup u = simulate_setup(5, params);
  EXPECT_EQ(u.source, "uniform");
  EXPECT_EQ(u.trace.transitions(), 20u);  // 5 * 4 ordered pairs
}

TEST(ProtocolTest, SimulateResultJsonShape) {
  const Design design = small_design();
  PartitionerOptions options = default_partitioner_options();
  options.search.max_move_evaluations = 100'000;
  // Tight enough to force a reconfigurable region (see ResultJsonFeasible-
  // Shape): a fully static proposal would load zero frames.
  const ResourceVec budget{400, 30, 12};
  const PartitionerResult result = partition_design(design, budget, options);
  ASSERT_TRUE(result.feasible);

  SimulateParams params;
  params.steps = 50;
  const SimulateSetup setup =
      simulate_setup(design.configurations().size(), params);
  sim::SimulationOptions sopt;
  const sim::SimulationResult sr =
      sim::simulate_scheme(design, result.proposed.scheme,
                           result.proposed.eval, setup.trace, sopt);
  const json::Value v = simulate_result_json(
      design, "", budget, params, setup.source, setup.trace.transitions(),
      {SimulatedScheme{"proposed", result.proposed.eval.total_frames,
                       result.proposed.eval.worst_frames, sr}});
  EXPECT_EQ(v.at("design").as_string(), "radio");
  EXPECT_TRUE(v.at("device").is_null());
  EXPECT_EQ(v.at("trace").at("source").as_string(), "markov");
  EXPECT_EQ(v.at("trace").at("transitions").as_u64(), 50u);
  EXPECT_FALSE(v.at("options").at("prefetch").as_bool());
  const json::Value& row = v.at("schemes").items().at(0);
  EXPECT_EQ(row.at("label").as_string(), "proposed");
  EXPECT_EQ(row.at("transitions").as_u64(), 50u);
  EXPECT_EQ(row.at("total_frames").as_u64(),
            result.proposed.eval.total_frames);
  EXPECT_GT(row.at("frames_loaded").as_u64(), 0u);
  EXPECT_GE(row.at("max_latency_ns").as_u64(), row.at("p50_latency_ns").as_u64());
  // Deterministic encoding, double field included.
  EXPECT_EQ(v.dump(), simulate_result_json(design, "", budget, params,
                                           setup.source,
                                           setup.trace.transitions(),
                                           {SimulatedScheme{
                                               "proposed",
                                               result.proposed.eval.total_frames,
                                               result.proposed.eval.worst_frames,
                                               sr}})
                          .dump());
}

TEST(ProtocolTest, FloorplanRequestDefaults) {
  const Request r = parse_request(
      "{\"type\":\"floorplan\",\"id\":\"f\",\"design_xml\":\"<x/>\"}");
  ASSERT_EQ(r.type, Request::Type::Floorplan);
  EXPECT_EQ(r.floorplan.partition.id, "f");
  EXPECT_EQ(r.floorplan.partition.target_string(), "auto");
  EXPECT_EQ(r.floorplan.params.top_k, 5u);
  EXPECT_FALSE(r.floorplan.params.first_fit);
  EXPECT_TRUE(r.floorplan.params.anneal);
  EXPECT_EQ(r.floorplan.params.anneal_seed, 1u);
}

TEST(ProtocolTest, FloorplanRequestAllFields) {
  const Request r = parse_request(
      "{\"type\":\"floorplan\",\"id\":\"f2\",\"design_xml\":\"<x/>\","
      "\"device\":\"XC5VFX70T\",\"evals\":5000,\"top_k\":3,"
      "\"strategy\":\"first-fit\",\"anneal\":false,\"anneal_seed\":9}");
  ASSERT_EQ(r.type, Request::Type::Floorplan);
  EXPECT_EQ(r.floorplan.partition.device, "XC5VFX70T");
  EXPECT_EQ(r.floorplan.partition.options.search.max_move_evaluations, 5000u);
  EXPECT_EQ(r.floorplan.params.top_k, 3u);
  EXPECT_TRUE(r.floorplan.params.first_fit);
  EXPECT_FALSE(r.floorplan.params.anneal);
  EXPECT_EQ(r.floorplan.params.anneal_seed, 9u);
  const FloorplanRerankOptions opt = r.floorplan.params.rerank_options();
  EXPECT_EQ(opt.top_k, 3u);
  EXPECT_EQ(opt.placement.strategy, PlacementStrategy::FirstFit);
  EXPECT_FALSE(opt.placement.use_annealer);
  EXPECT_EQ(opt.placement.annealing.seed, 9u);
}

TEST(ProtocolTest, MalformedFloorplanRequestsThrow) {
  // No design.
  EXPECT_THROW(parse_request("{\"type\":\"floorplan\"}"), ParseError);
  // Zero candidates would veto everything vacuously.
  EXPECT_THROW(parse_request("{\"type\":\"floorplan\",\"design_xml\":\"<x/>\","
                             "\"top_k\":0}"),
               ParseError);
  // Strategy names are closed.
  EXPECT_THROW(parse_request("{\"type\":\"floorplan\",\"design_xml\":\"<x/>\","
                             "\"strategy\":\"worst-fit\"}"),
               ParseError);
  // Unknown fields fail loudly, and floorplan knobs are rejected on plain
  // partition requests.
  EXPECT_THROW(parse_request("{\"type\":\"floorplan\",\"design_xml\":\"<x/>\","
                             "\"top_q\":3}"),
               ParseError);
  EXPECT_THROW(parse_request("{\"type\":\"partition\",\"design_xml\":\"<x/>\","
                             "\"top_k\":3}"),
               ParseError);
}

TEST(ProtocolTest, SimulateRequestParsesFloorplanFlag) {
  const Request r = parse_request(
      "{\"type\":\"simulate\",\"id\":\"s\",\"design_xml\":\"<x/>\","
      "\"floorplan\":true}");
  ASSERT_EQ(r.type, Request::Type::Simulate);
  EXPECT_TRUE(r.simulate.params.floorplan);
  SimulateParams plain;
  EXPECT_NE(r.simulate.params.cache_string(), plain.cache_string());
}

TEST(ProtocolTest, FloorplanCacheStringSeparatesEveryKnob) {
  FloorplanParams a;
  std::set<std::string> keys = {a.cache_string()};
  FloorplanParams b = a;
  b.top_k = 7;
  keys.insert(b.cache_string());
  FloorplanParams c = a;
  c.first_fit = true;
  keys.insert(c.cache_string());
  FloorplanParams d = a;
  d.anneal = false;
  keys.insert(d.cache_string());
  FloorplanParams e = a;
  e.anneal_seed = 2;
  keys.insert(e.cache_string());
  EXPECT_EQ(keys.size(), 5u);  // every knob lands in the cache key
}

TEST(ProtocolTest, FloorplanResultJsonEncodesRankingAndWinner) {
  const Design design = small_design();
  // Tight enough that every enumerated scheme keeps reconfigurable regions
  // (a loose budget folds the design into the static region and the winner
  // would have no rectangles to encode).
  const ResourceVec budget{400, 30, 10};
  const PartitionerResult result = partition_design(design, budget);
  ASSERT_TRUE(result.feasible);
  const DeviceLibrary lib = DeviceLibrary::extended();
  const Device* device = lib.smallest_fitting(budget);
  ASSERT_NE(device, nullptr);
  const FloorplanRerank rerank =
      floorplan_rerank(design, result, *device, budget, {}, &lib);
  ASSERT_TRUE(rerank.any_feasible);

  const json::Value v =
      floorplan_result_json(design, result, rerank, device->name(), budget);
  EXPECT_EQ(v.at("design").as_string(), "radio");
  EXPECT_TRUE(v.at("feasible").as_bool());
  EXPECT_EQ(v.at("device").as_string(), device->name());
  EXPECT_EQ(v.at("candidates").as_u64(), rerank.ranked.size());
  EXPECT_EQ(v.at("vetoed").as_u64(), rerank.vetoed_count);
  EXPECT_EQ(v.at("overturned").as_bool(), rerank.overturned);
  EXPECT_EQ(v.at("winner_source").as_u64(), rerank.winner_source);
  const auto& ranked = v.at("ranked").items();
  ASSERT_EQ(ranked.size(), rerank.ranked.size());
  const json::Value& top = ranked.front();
  EXPECT_FALSE(top.at("vetoed").as_bool());
  EXPECT_EQ(top.at("placement_total").as_u64(),
            rerank.ranked.front().placement_total);
  EXPECT_FALSE(top.at("placements").items().empty());
  EXPECT_TRUE(v.at("winner").is_object());
  // Deterministic encoding.
  EXPECT_EQ(v.dump(), floorplan_result_json(design, result, rerank,
                                            device->name(), budget)
                          .dump());
}

}  // namespace
}  // namespace prpart::server
