#include "floorplan/rerank.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "tests/core/example_designs.hpp"
#include "util/rng.hpp"

namespace prpart {
namespace {

PartitionerOptions search_options(unsigned threads,
                                  std::uint64_t evals = 200'000) {
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 48;
  opt.search.max_move_evaluations = evals;
  opt.search.threads = threads;
  return opt;
}

/// The committed overturn example: synthetic seed 16, logic class, placed on
/// the paper's case-study FX70T. All four enumerated schemes tie on the
/// Eq. 10 estimate; placement-true frames split the tie against source
/// order and veto two schemes outright (static overflow).
SyntheticDesign seed16_logic() {
  Rng rng(16);
  return generate_synthetic(rng, CircuitClass::Logic);
}

TEST(FloorplanRerank, RankedIsPermutationOfEnumeratedTopK) {
  const Design design = testing::paper_example();
  const ResourceVec budget{900, 10, 16};
  const PartitionerResult result =
      partition_design(design, budget, search_options(1));
  ASSERT_TRUE(result.feasible);
  ASSERT_TRUE(result.proposed_from_search);

  const DeviceLibrary lib = DeviceLibrary::extended();
  const Device* device = lib.smallest_fitting(budget);
  ASSERT_NE(device, nullptr);
  FloorplanRerankOptions opt;
  opt.top_k = 3;
  const FloorplanRerank rerank =
      floorplan_rerank(design, result, *device, budget, opt, &lib);

  // Strictly a permutation of the enumerated top-K: every source index
  // appears exactly once and none is invented.
  const std::size_t expect =
      std::min<std::size_t>(opt.top_k, result.alternatives.size());
  ASSERT_EQ(rerank.ranked.size(), expect);
  std::set<std::size_t> sources;
  for (const FloorplanCandidate& c : rerank.ranked) {
    EXPECT_LT(c.source_index, expect);
    EXPECT_TRUE(sources.insert(c.source_index).second)
        << "duplicated source " << c.source_index;
    // The rerank stage re-evaluates the enumerated scheme; the estimate must
    // round-trip to what the search ranked it with.
    EXPECT_EQ(c.estimated_total,
              result.alternatives[c.source_index].total_frames);
  }

  // Feasible prefix ascending by (placement_total, source), vetoed suffix
  // in source order.
  bool seen_veto = false;
  for (std::size_t i = 0; i + 1 < rerank.ranked.size(); ++i) {
    const FloorplanCandidate& a = rerank.ranked[i];
    const FloorplanCandidate& b = rerank.ranked[i + 1];
    if (a.vetoed) seen_veto = true;
    EXPECT_FALSE(seen_veto && !b.vetoed) << "feasible after vetoed";
    if (!a.vetoed && !b.vetoed) {
      EXPECT_TRUE(a.placement_total < b.placement_total ||
                  (a.placement_total == b.placement_total &&
                   a.source_index < b.source_index));
    }
    if (a.vetoed && b.vetoed) {
      EXPECT_LT(a.source_index, b.source_index);
    }
  }
  if (rerank.any_feasible) {
    EXPECT_EQ(rerank.winner_source, rerank.ranked.front().source_index);
  }
}

TEST(FloorplanRerank, PlacementTotalsDominateEstimates) {
  const Design design = testing::paper_example();
  const ResourceVec budget{900, 10, 16};
  const PartitionerResult result =
      partition_design(design, budget, search_options(1));
  ASSERT_TRUE(result.feasible);
  const DeviceLibrary lib = DeviceLibrary::extended();
  const Device* device = lib.smallest_fitting(budget);
  ASSERT_NE(device, nullptr);
  const FloorplanRerank rerank =
      floorplan_rerank(design, result, *device, budget, {}, &lib);
  ASSERT_TRUE(rerank.any_feasible);
  for (const FloorplanCandidate& c : rerank.ranked) {
    if (c.vetoed) continue;
    EXPECT_GE(c.placement_total, c.estimated_total);
    EXPECT_EQ(c.placement_total, c.eval.total_frames);
    EXPECT_EQ(c.placement_worst, c.eval.worst_frames);
    ASSERT_EQ(c.plan.placements.size(), c.eval.regions.size());
    for (std::size_t r = 0; r < c.eval.regions.size(); ++r)
      EXPECT_EQ(c.eval.regions[r].frames, c.plan.placed_frames[r]);
  }
}

// The re-rank stage runs single-threaded over the search's deterministic
// output, so its result is byte-identical at any search thread count.
TEST(FloorplanRerank, ByteIdenticalAcrossSearchThreadCounts) {
  const SyntheticDesign s = seed16_logic();
  const DeviceLibrary lib = DeviceLibrary::extended();
  const Device& device = lib.by_name("XC5VFX70T");
  const ResourceVec budget = device.capacity();

  std::vector<FloorplanRerank> reranks;
  for (unsigned threads : {1u, 4u, 16u}) {
    const PartitionerResult result = partition_design(
        s.design, budget, search_options(threads, 60'000));
    ASSERT_TRUE(result.feasible);
    reranks.push_back(
        floorplan_rerank(s.design, result, device, budget, {}, &lib));
  }

  const FloorplanRerank& base = reranks.front();
  for (std::size_t v = 1; v < reranks.size(); ++v) {
    const FloorplanRerank& other = reranks[v];
    ASSERT_EQ(base.ranked.size(), other.ranked.size());
    EXPECT_EQ(base.any_feasible, other.any_feasible);
    EXPECT_EQ(base.winner_source, other.winner_source);
    EXPECT_EQ(base.overturned, other.overturned);
    EXPECT_EQ(base.vetoed_count, other.vetoed_count);
    for (std::size_t i = 0; i < base.ranked.size(); ++i) {
      const FloorplanCandidate& a = base.ranked[i];
      const FloorplanCandidate& b = other.ranked[i];
      EXPECT_EQ(a.source_index, b.source_index);
      EXPECT_EQ(a.vetoed, b.vetoed);
      EXPECT_EQ(a.estimated_total, b.estimated_total);
      EXPECT_EQ(a.placement_total, b.placement_total);
      EXPECT_EQ(a.placement_worst, b.placement_worst);
      ASSERT_EQ(a.plan.placements.size(), b.plan.placements.size());
      for (std::size_t p = 0; p < a.plan.placements.size(); ++p) {
        EXPECT_EQ(a.plan.placements[p].row, b.plan.placements[p].row);
        EXPECT_EQ(a.plan.placements[p].height, b.plan.placements[p].height);
        EXPECT_EQ(a.plan.placements[p].col, b.plan.placements[p].col);
        EXPECT_EQ(a.plan.placements[p].width, b.plan.placements[p].width);
      }
    }
  }
}

// Committed overturn example (also exercised end to end by the CLI tests
// and examples/floorplan_coopt): on the FX70T the Eq. 10 estimate ties all
// four enumerated schemes, the placement-true cost re-ranks scheme 2 (zero
// -indexed) past scheme 0, and two schemes are vetoed for static overflow
// with a retarget fix-it.
TEST(FloorplanRerank, PlacementTrueCostOverturnsTheEstimateRanking) {
  const SyntheticDesign s = seed16_logic();
  const DeviceLibrary lib = DeviceLibrary::extended();
  const Device& device = lib.by_name("XC5VFX70T");
  const ResourceVec budget = device.capacity();
  const PartitionerResult result =
      partition_design(s.design, budget, search_options(1, 60'000));
  ASSERT_TRUE(result.feasible);
  const FloorplanRerank rerank =
      floorplan_rerank(s.design, result, device, budget, {}, &lib);

  ASSERT_TRUE(rerank.any_feasible);
  EXPECT_TRUE(rerank.overturned);
  EXPECT_NE(rerank.winner_source, 0u);
  EXPECT_EQ(rerank.vetoed_count, 2u);

  // The Eq. 10 winner survives the veto but loses the re-rank: it places at
  // a strictly higher placement-true cost than the new winner despite an
  // equal (or better) estimate.
  const auto eq10 = std::find_if(
      rerank.ranked.begin(), rerank.ranked.end(),
      [](const FloorplanCandidate& c) { return c.source_index == 0; });
  ASSERT_NE(eq10, rerank.ranked.end());
  ASSERT_FALSE(eq10->vetoed);
  const FloorplanCandidate& winner = rerank.ranked.front();
  EXPECT_GT(eq10->placement_total, winner.placement_total);
  EXPECT_LE(winner.estimated_total, eq10->estimated_total);

  // Vetoed candidates carry the typed verdict with a fix-it.
  for (const FloorplanCandidate& c : rerank.ranked) {
    if (!c.vetoed) continue;
    EXPECT_EQ(c.plan.verdict.kind, FloorplanVerdict::Kind::StaticOverflow);
    ASSERT_FALSE(c.plan.verdict.diagnostics.empty());
    EXPECT_EQ(c.plan.verdict.smallest_feasible_device, "XC5VFX95T");
  }
}

TEST(FloorplanRerank, AllVetoedLeavesNoWinner) {
  const Design design = testing::paper_example();
  const ResourceVec budget{900, 10, 16};
  const PartitionerResult result =
      partition_design(design, budget, search_options(1));
  ASSERT_TRUE(result.feasible);
  // A device far too small for any enumerated scheme: every candidate is
  // vetoed and the trailer keeps source order.
  const Device tiny("tiny", 1, {BlockType::Clb, BlockType::Bram});
  const FloorplanRerank rerank =
      floorplan_rerank(design, result, tiny, budget, {});
  ASSERT_FALSE(rerank.ranked.empty());
  EXPECT_FALSE(rerank.any_feasible);
  EXPECT_FALSE(rerank.overturned);
  EXPECT_EQ(rerank.vetoed_count, rerank.ranked.size());
  for (std::size_t i = 0; i < rerank.ranked.size(); ++i) {
    EXPECT_TRUE(rerank.ranked[i].vetoed);
    EXPECT_EQ(rerank.ranked[i].source_index, i);
    EXPECT_FALSE(rerank.ranked[i].plan.verdict.diagnostics.empty());
  }
}

TEST(FloorplanRerank, InfeasiblePartitionYieldsEmptyRerank) {
  const Design design = testing::paper_example();
  const ResourceVec budget{1, 0, 0};  // hopeless
  const PartitionerResult result =
      partition_design(design, budget, search_options(1, 1'000));
  ASSERT_FALSE(result.feasible);
  const Device d("test", {800, 8, 8}, 1);
  const FloorplanRerank rerank =
      floorplan_rerank(design, result, d, budget, {});
  EXPECT_TRUE(rerank.ranked.empty());
  EXPECT_FALSE(rerank.any_feasible);
}

}  // namespace
}  // namespace prpart
