#include "floorplan/placement.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "core/partitioner.hpp"
#include "design/synthetic.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using B = BlockType;

/// 1-row device with two BRAM columns separated by CLB columns (same shape
/// as the annealing tests): C C C B C C C B C C C C
Device fragmented_device() {
  return Device("frag", 1,
                {B::Clb, B::Clb, B::Clb, B::Bram, B::Clb, B::Clb, B::Clb,
                 B::Bram, B::Clb, B::Clb, B::Clb, B::Clb});
}

/// A synthetic evaluated scheme over `tiles`: every region reconfigures on
/// the single configuration pair, so placement-true totals are just sums.
SchemeEvaluation eval_of(const std::vector<TileCount>& tiles,
                         const ResourceVec& static_resources = {}) {
  SchemeEvaluation e;
  e.valid = true;
  e.fits = true;
  e.static_resources = static_resources;
  for (const TileCount& t : tiles) {
    RegionReport r;
    r.tiles = t;
    r.frames = t.frames();
    r.reconfig_pairs = 1;
    r.active = {0, 1};
    e.regions.push_back(std::move(r));
    e.total_frames += t.frames();
  }
  e.worst_frames = e.total_frames;
  return e;
}

bool rects_disjoint(const std::vector<RegionPlacement>& placements) {
  for (std::size_t a = 0; a < placements.size(); ++a)
    for (std::size_t b = a + 1; b < placements.size(); ++b) {
      const RegionPlacement& p = placements[a];
      const RegionPlacement& q = placements[b];
      if (p.width == 0 || q.width == 0) continue;
      const bool row_overlap =
          p.row < q.row + q.height && q.row < p.row + p.height;
      const bool col_overlap =
          p.col < q.col + q.width && q.col < p.col + p.width;
      if (row_overlap && col_overlap) return false;
    }
  return true;
}

TEST(Skyline, PlacementsCoverRequirementsAndStayDisjoint) {
  const Device d("test", {1600, 16, 16}, 2);
  const std::vector<TileCount> need = {{4, 1, 0}, {3, 0, 1}, {6, 0, 0}};
  const FloorplanResult r = skyline_place(d, need);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.placements.size(), need.size());
  for (std::size_t i = 0; i < need.size(); ++i) {
    const RegionPlacement& p = r.placements[i];
    EXPECT_EQ(p.region, i);  // scheme order restored
    EXPECT_LE(p.row + p.height, d.rows());
    EXPECT_LE(p.col + p.width, d.columns().size());
    EXPECT_GE(p.provided.clb_tiles, need[i].clb_tiles);
    EXPECT_GE(p.provided.bram_tiles, need[i].bram_tiles);
    EXPECT_GE(p.provided.dsp_tiles, need[i].dsp_tiles);
  }
  EXPECT_TRUE(rects_disjoint(r.placements));
}

TEST(Skyline, DeterministicAcrossCalls) {
  const Device d("test", {3200, 32, 32}, 4);
  const std::vector<TileCount> need = {{9, 2, 0}, {5, 0, 2}, {14, 1, 1},
                                       {3, 0, 0}};
  const FloorplanResult a = skyline_place(d, need);
  const FloorplanResult b = skyline_place(d, need);
  ASSERT_EQ(a.success, b.success);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].region, b.placements[i].region);
    EXPECT_EQ(a.placements[i].row, b.placements[i].row);
    EXPECT_EQ(a.placements[i].height, b.placements[i].height);
    EXPECT_EQ(a.placements[i].col, b.placements[i].col);
    EXPECT_EQ(a.placements[i].width, b.placements[i].width);
  }
}

TEST(Skyline, ZeroAreaRegionsGetWidthZero) {
  const Device d("test", {800, 8, 8}, 1);
  const FloorplanResult r = skyline_place(d, {{0, 0, 0}, {2, 0, 0}});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.placements[0].width, 0u);
  EXPECT_GT(r.placements[1].width, 0u);
}

TEST(Skyline, ReportsFailedRegion) {
  const Device d = fragmented_device();
  // Three BRAM-needing regions on a two-BRAM-column device.
  const FloorplanResult r =
      skyline_place(d, {{1, 1, 0}, {1, 1, 0}, {1, 1, 0}});
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.failed_region, 3u);
}

TEST(Skyline, RandomizedSweepStaysSoundOnEveryDevice) {
  const DeviceLibrary lib = DeviceLibrary::reference_parts();
  Rng rng(2013);
  for (int trial = 0; trial < 200; ++trial) {
    const Device& d =
        lib.devices()[rng.below(lib.devices().size())];
    std::vector<TileCount> need;
    const std::size_t regions = 1 + rng.below(5);
    for (std::size_t i = 0; i < regions; ++i)
      need.push_back(TileCount{
          static_cast<std::uint32_t>(rng.below(d.tiles_of(B::Clb) / 4 + 1)),
          static_cast<std::uint32_t>(rng.below(d.tiles_of(B::Bram) / 4 + 1)),
          static_cast<std::uint32_t>(rng.below(d.tiles_of(B::Dsp) / 4 + 1))});
    const FloorplanResult r = skyline_place(d, need);
    if (!r.success) continue;
    ASSERT_EQ(r.placements.size(), need.size());
    EXPECT_TRUE(rects_disjoint(r.placements));
    for (std::size_t i = 0; i < need.size(); ++i) {
      EXPECT_GE(r.placements[i].provided.clb_tiles, need[i].clb_tiles);
      EXPECT_GE(r.placements[i].provided.bram_tiles, need[i].bram_tiles);
      EXPECT_GE(r.placements[i].provided.dsp_tiles, need[i].dsp_tiles);
    }
  }
}

TEST(FloorplanScheme, FastPathReportsSkylineStage) {
  const Device d("test", {1600, 16, 16}, 2);
  const SchemeEvaluation eval = eval_of({{4, 1, 0}, {3, 0, 1}});
  const PlacedFloorplan plan = floorplan_scheme(d, eval);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.stage, FloorplanStage::Skyline);
  EXPECT_EQ(plan.verdict.kind, FloorplanVerdict::Kind::Feasible);
  EXPECT_TRUE(plan.verdict.diagnostics.empty());
  ASSERT_EQ(plan.placements.size(), 2u);
  ASSERT_EQ(plan.placed_frames.size(), 2u);
}

TEST(FloorplanScheme, EscalatesToAnnealerOnFragmentedInstances) {
  // 2-row C C B device. The only legal packing stands the pure-CLB region
  // upright (height 2, width 1) so both CLB+BRAM regions can stack beside
  // the single BRAM column. Skyline and greedy both lay it flat (lower top /
  // same zero waste, earlier in scan order) and wedge; the annealer's joint
  // re-seating finds the upright packing.
  const Device d("cc_b", 2, {B::Clb, B::Clb, B::Bram});
  const std::vector<TileCount> need = {{2, 0, 0}, {1, 1, 0}, {1, 1, 0}};
  ASSERT_FALSE(skyline_place(d, need).success);
  ASSERT_FALSE(Floorplanner(d, {PlacementStrategy::BestFit})
                   .place(need)
                   .success);
  const SchemeEvaluation eval = eval_of(need);
  const PlacedFloorplan plan = floorplan_scheme(d, eval);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.stage, FloorplanStage::Annealed);
}

TEST(FloorplanScheme, LadderIsDeterministic) {
  // An instance the ladder can only solve on the annealed rung, so this
  // checks determinism of the randomised rung end to end.
  const Device d("cc_b", 2, {B::Clb, B::Clb, B::Bram});
  const SchemeEvaluation eval = eval_of({{2, 0, 0}, {1, 1, 0}, {1, 1, 0}});
  const PlacedFloorplan a = floorplan_scheme(d, eval);
  const PlacedFloorplan b = floorplan_scheme(d, eval);
  ASSERT_EQ(a.feasible, b.feasible);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].row, b.placements[i].row);
    EXPECT_EQ(a.placements[i].height, b.placements[i].height);
    EXPECT_EQ(a.placements[i].col, b.placements[i].col);
    EXPECT_EQ(a.placements[i].width, b.placements[i].width);
  }
  EXPECT_EQ(a.placed_frames, b.placed_frames);
}

TEST(FloorplanScheme, RegionUnplaceableVerdictNamesBindingAndFixit) {
  const Device d = fragmented_device();
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const SchemeEvaluation eval =
      eval_of({{1, 1, 0}, {1, 1, 0}, {1, 1, 0}});  // needs 3 BRAM columns
  const PlacedFloorplan plan = floorplan_scheme(d, eval, {}, &lib);
  ASSERT_FALSE(plan.feasible);
  EXPECT_EQ(plan.stage, FloorplanStage::None);
  EXPECT_EQ(plan.verdict.kind, FloorplanVerdict::Kind::RegionUnplaceable);
  EXPECT_EQ(plan.verdict.binding, B::Bram);
  EXPECT_EQ(plan.verdict.required, 3u);
  EXPECT_EQ(plan.verdict.available, 2u);
  EXPECT_FALSE(plan.verdict.fragmented);  // a genuine tile shortfall
  // The smallest Virtex-5 part places three one-tile BRAM regions.
  EXPECT_EQ(plan.verdict.smallest_feasible_device, "XC5VLX20T");
  ASSERT_EQ(plan.verdict.diagnostics.size(), 1u);
  EXPECT_EQ(plan.verdict.diagnostics[0].code, "floorplan-region-unplaceable");
  EXPECT_EQ(plan.verdict.diagnostics[0].fixit, "retarget XC5VLX20T");
}

TEST(FloorplanScheme, FragmentationIsFlaggedWhenTilesExist) {
  const Device d = fragmented_device();
  // By count this fits exactly (10 CLB tiles, 1 of 2 BRAM tiles). But the
  // longest pure-CLB run is 4 columns, so every 5-CLB rectangle must bridge
  // a BRAM column; two of them consume both, leaving the BRAM region
  // without a home. No packing exists — the failure Eqs. 3-5 cannot see.
  const SchemeEvaluation eval = eval_of({{5, 0, 0}, {5, 0, 0}, {0, 1, 0}});
  const PlacedFloorplan plan = floorplan_scheme(d, eval);
  ASSERT_FALSE(plan.feasible);
  EXPECT_EQ(plan.verdict.kind, FloorplanVerdict::Kind::RegionUnplaceable);
  EXPECT_TRUE(plan.verdict.fragmented);
}

TEST(FloorplanScheme, StaticOverflowVerdict) {
  const Device d("test", {800, 8, 8}, 1);  // 40 CLB tiles, 2 BRAM, 1 DSP
  // One region swallowing most of the fabric, then static logic that no
  // longer fits in what is left.
  const SchemeEvaluation eval =
      eval_of({{38, 0, 0}}, ResourceVec{200, 0, 0});
  const PlacedFloorplan plan = floorplan_scheme(d, eval);
  ASSERT_FALSE(plan.feasible);
  EXPECT_EQ(plan.verdict.kind, FloorplanVerdict::Kind::StaticOverflow);
  EXPECT_EQ(plan.verdict.binding, B::Clb);
  ASSERT_EQ(plan.verdict.diagnostics.size(), 1u);
  EXPECT_EQ(plan.verdict.diagnostics[0].code, "floorplan-static-overflow");
}

TEST(FloorplanScheme, RequiresValidEvaluation) {
  const Device d("test", {800, 8, 8}, 1);
  SchemeEvaluation eval;  // valid = false
  EXPECT_THROW(floorplan_scheme(d, eval), InternalError);
}

TEST(PlacementTrue, PatchedEvaluationSumsPlacedFrames) {
  const Device d("test", {1600, 16, 16}, 2);
  const SchemeEvaluation eval = eval_of({{4, 1, 0}, {3, 0, 1}});
  const PlacedFloorplan plan = floorplan_scheme(d, eval);
  ASSERT_TRUE(plan.feasible);
  const SchemeEvaluation placed = with_placement_frames(eval, plan);
  EXPECT_EQ(placed.total_frames,
            plan.placed_frames[0] + plan.placed_frames[1]);
  EXPECT_EQ(placed.worst_frames, placed.total_frames);  // single pair
  EXPECT_EQ(placed.regions[0].frames, plan.placed_frames[0]);
  EXPECT_EQ(placed.regions[1].frames, plan.placed_frames[1]);
  EXPECT_EQ(placement_true_total(eval, plan), placed.total_frames);
  EXPECT_EQ(placement_true_worst(eval, plan), placed.worst_frames);
}

// Property: a placed rectangle covers its region's tile requirement and
// frames are monotone in tiles, so placement-true frames can only be >= the
// Eq. 3-6 estimate — for every region, on every device, for any workload.
TEST(PlacementTrue, PlacedFramesDominateEstimateProperty) {
  const DeviceLibrary lib = DeviceLibrary::extended();
  Rng rng(7);
  int checked = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const Device& d = lib.devices()[rng.below(lib.devices().size())];
    std::vector<TileCount> need;
    const std::size_t regions = 1 + rng.below(4);
    for (std::size_t i = 0; i < regions; ++i)
      need.push_back(TileCount{
          static_cast<std::uint32_t>(rng.below(d.tiles_of(B::Clb) / 3 + 1)),
          static_cast<std::uint32_t>(rng.below(d.tiles_of(B::Bram) / 3 + 1)),
          static_cast<std::uint32_t>(rng.below(d.tiles_of(B::Dsp) / 3 + 1))});
    const SchemeEvaluation eval = eval_of(need);
    const PlacedFloorplan plan = floorplan_scheme(d, eval);
    if (!plan.feasible) continue;
    ++checked;
    for (std::size_t r = 0; r < eval.regions.size(); ++r)
      EXPECT_GE(plan.placed_frames[r], eval.regions[r].frames)
          << d.name() << " region " << r;
    EXPECT_GE(placement_true_total(eval, plan), eval.total_frames);
    EXPECT_GE(placement_true_worst(eval, plan), eval.worst_frames);
  }
  EXPECT_GT(checked, 20);  // the sweep must actually exercise the property
}

// Property (one direction of the veto soundness chain): when the full
// pipeline floorplans a scheme on a device, the analysis engine's
// single-region lower bound cannot prove the design infeasible there. The
// converse does not hold — prove_infeasible == nullopt says nothing about
// rectangle packings.
TEST(PlacementTrue, FloorplanFeasibleImpliesLowerBoundFeasibleProperty) {
  const DeviceLibrary lib = DeviceLibrary::extended();
  PartitionerOptions popt;
  popt.search.max_move_evaluations = 40'000;
  popt.search.threads = 1;
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const SyntheticDesign s = generate_synthetic(
        rng, static_cast<CircuitClass>(seed % 4));
    for (const Device& d : lib.devices()) {
      const PartitionerResult result =
          partition_design(s.design, d.capacity(), popt);
      if (!result.feasible) continue;
      const PlacedFloorplan plan =
          floorplan_scheme(d, result.proposed.eval);
      if (!plan.feasible) continue;
      ++checked;
      EXPECT_FALSE(
          analysis::prove_infeasible(s.design, d.capacity(), lib, d.name())
              .has_value())
          << s.design.name() << " on " << d.name();
      break;  // one feasible device per design keeps the sweep fast
    }
  }
  EXPECT_GT(checked, 3);
}

}  // namespace
}  // namespace prpart
