#include "floorplan/annealing.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart {
namespace {

using B = BlockType;

/// 1-row device with two BRAM columns separated by CLB columns:
/// C C C B C C C B C C C C
Device fragmented_device() {
  return Device("frag", 1,
                {B::Clb, B::Clb, B::Clb, B::Bram, B::Clb, B::Clb, B::Clb,
                 B::Bram, B::Clb, B::Clb, B::Clb, B::Clb});
}

TEST(Annealing, PlacesSimpleRegions) {
  const Device d("test", {1600, 16, 16}, 2);
  const FloorplanResult r = anneal_place(d, {{4, 1, 0}, {3, 0, 1}});
  ASSERT_TRUE(r.success);
  for (const RegionPlacement& p : r.placements) {
    EXPECT_LE(p.row + p.height, d.rows());
    EXPECT_LE(p.col + p.width, d.columns().size());
  }
}

TEST(Annealing, ResultsCoverRequirements) {
  const Device d("test", {1600, 16, 16}, 2);
  const std::vector<TileCount> need = {{4, 1, 0}, {3, 0, 1}, {6, 0, 0}};
  const FloorplanResult r = anneal_place(d, need);
  ASSERT_TRUE(r.success);
  for (const RegionPlacement& p : r.placements) {
    EXPECT_GE(p.provided.clb_tiles, need[p.region].clb_tiles);
    EXPECT_GE(p.provided.bram_tiles, need[p.region].bram_tiles);
    EXPECT_GE(p.provided.dsp_tiles, need[p.region].dsp_tiles);
  }
}

TEST(Annealing, ResultsAreDisjoint) {
  const Device d("test", {1600, 16, 16}, 2);
  const std::vector<TileCount> need = {{4, 1, 0}, {3, 0, 1}, {6, 0, 0}};
  const FloorplanResult r = anneal_place(d, need);
  ASSERT_TRUE(r.success);
  for (std::size_t a = 0; a < r.placements.size(); ++a)
    for (std::size_t b = a + 1; b < r.placements.size(); ++b) {
      const RegionPlacement& p = r.placements[a];
      const RegionPlacement& q = r.placements[b];
      if (p.width == 0 || q.width == 0) continue;
      const bool row_overlap =
          p.row < q.row + q.height && q.row < p.row + p.height;
      const bool col_overlap =
          p.col < q.col + q.width && q.col < p.col + p.width;
      EXPECT_FALSE(row_overlap && col_overlap);
    }
}

TEST(Annealing, UntanglesFragmentationWhereGreedyWedges) {
  // Greedy first-fit places the biggest region (the pure-CLB one) first;
  // starting at column 0 its window swallows the first BRAM column, leaving
  // only one BRAM column for the two BRAM-needing regions -> greedy fails.
  // The annealer shifts the big region to the right end (columns 8-11) and
  // fits everything.
  const Device d = fragmented_device();
  const std::vector<TileCount> need = {
      {2, 1, 0},  // around one BRAM column
      {2, 1, 0},  // around the other
      {4, 0, 0},  // pure CLB block, largest -> placed first by greedy
  };
  const FloorplanResult greedy = Floorplanner(d).place(need);
  EXPECT_FALSE(greedy.success);

  const FloorplanResult annealed = anneal_place(d, need);
  EXPECT_TRUE(annealed.success);
}

TEST(Annealing, ImpossibleInstanceFails) {
  const Device d = fragmented_device();
  // Three regions each needing a BRAM tile; the device has two columns.
  const std::vector<TileCount> need = {{1, 1, 0}, {1, 1, 0}, {1, 1, 0}};
  AnnealingOptions opt;
  opt.iterations = 5000;
  const FloorplanResult r = anneal_place(d, need, opt);
  EXPECT_FALSE(r.success);
}

void expect_byte_identical(const FloorplanResult& a, const FloorplanResult& b) {
  ASSERT_EQ(a.success, b.success);
  ASSERT_EQ(a.failed_region, b.failed_region);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].region, b.placements[i].region);
    EXPECT_EQ(a.placements[i].row, b.placements[i].row);
    EXPECT_EQ(a.placements[i].height, b.placements[i].height);
    EXPECT_EQ(a.placements[i].col, b.placements[i].col);
    EXPECT_EQ(a.placements[i].width, b.placements[i].width);
    EXPECT_EQ(a.placements[i].provided, b.placements[i].provided);
  }
}

TEST(Annealing, DeterministicForSeed) {
  // Byte-exact: every field of every placement, not just the anchor. The
  // annealer's result is a pure function of (device, regions, options).
  const Device d("test", {1600, 16, 16}, 2);
  const std::vector<TileCount> need = {{4, 1, 0}, {3, 0, 1}};
  AnnealingOptions opt;
  opt.seed = 99;
  const FloorplanResult a = anneal_place(d, need, opt);
  const FloorplanResult b = anneal_place(d, need, opt);
  expect_byte_identical(a, b);
}

TEST(Annealing, SeedSelectsTheExploration) {
  // Different seeds walk different trajectories; on a loose instance both
  // must still succeed (seed changes exploration, never soundness).
  const Device d = fragmented_device();
  const std::vector<TileCount> need = {{2, 1, 0}, {2, 1, 0}, {4, 0, 0}};
  AnnealingOptions opt;
  for (const std::uint64_t seed : {1u, 7u, 99u}) {
    opt.seed = seed;
    const FloorplanResult r = anneal_place(d, need, opt);
    EXPECT_TRUE(r.success) << "seed " << seed;
  }
}

TEST(Annealing, RefineAcceptsAWarmStart) {
  // Hand the annealer the greedy rung's wedged partial placement (the big
  // CLB region parked over a BRAM column). It must still untangle the
  // instance, and repeat the exact same result when called again.
  const Device d = fragmented_device();
  const std::vector<TileCount> need = {{2, 1, 0}, {2, 1, 0}, {4, 0, 0}};
  const FloorplanResult greedy = Floorplanner(d).place(need);
  ASSERT_FALSE(greedy.success);

  const FloorplanResult a = anneal_refine(d, need, greedy.placements);
  EXPECT_TRUE(a.success);
  const FloorplanResult b = anneal_refine(d, need, greedy.placements);
  expect_byte_identical(a, b);
}

TEST(Annealing, RefineWithEmptyWarmStartMatchesColdStart) {
  const Device d("test", {1600, 16, 16}, 2);
  const std::vector<TileCount> need = {{4, 1, 0}, {3, 0, 1}, {6, 0, 0}};
  const FloorplanResult cold = anneal_place(d, need);
  const FloorplanResult warm = anneal_refine(d, need, {});
  expect_byte_identical(cold, warm);
}

TEST(Annealing, ZeroAreaRegionsIgnored) {
  const Device d("test", {800, 8, 8}, 1);
  const FloorplanResult r = anneal_place(d, {{0, 0, 0}, {2, 0, 0}});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.placements[0].width, 0u);
  EXPECT_GT(r.placements[1].width, 0u);
}

TEST(Annealing, RejectsBadOptions) {
  const Device d("test", {800, 8, 8}, 1);
  AnnealingOptions opt;
  opt.iterations = 0;
  EXPECT_THROW(anneal_place(d, {{1, 0, 0}}, opt), InternalError);
  opt.iterations = 10;
  opt.cooling = 1.5;
  EXPECT_THROW(anneal_place(d, {{1, 0, 0}}, opt), InternalError);
}

}  // namespace
}  // namespace prpart
