#include "floorplan/floorplanner.hpp"

#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "synth/ip_library.hpp"
#include "tests/core/example_designs.hpp"

namespace prpart {
namespace {

TEST(Floorplanner, PlacesSingleSmallRegion) {
  const Device d("test", {800, 8, 8}, 2);
  const Floorplanner fp(d);
  const FloorplanResult r = fp.place({TileCount{3, 0, 0}});
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.placements.size(), 1u);
  EXPECT_GE(r.placements[0].provided.clb_tiles, 3u);
}

TEST(Floorplanner, PlacementsProvideRequirements) {
  const Device d("test", {2000, 24, 24}, 4);
  const Floorplanner fp(d);
  const std::vector<TileCount> need = {
      {10, 1, 0}, {5, 0, 1}, {8, 1, 1}, {2, 0, 0}};
  const FloorplanResult r = fp.place(need);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.placements.size(), need.size());
  for (const RegionPlacement& p : r.placements) {
    EXPECT_GE(p.provided.clb_tiles, need[p.region].clb_tiles);
    EXPECT_GE(p.provided.bram_tiles, need[p.region].bram_tiles);
    EXPECT_GE(p.provided.dsp_tiles, need[p.region].dsp_tiles);
  }
}

TEST(Floorplanner, RectanglesDoNotOverlap) {
  const Device d("test", {2000, 24, 24}, 4);
  const Floorplanner fp(d);
  const FloorplanResult r =
      fp.place({{10, 1, 0}, {5, 0, 1}, {8, 1, 1}, {12, 0, 0}});
  ASSERT_TRUE(r.success);
  for (std::size_t a = 0; a < r.placements.size(); ++a) {
    for (std::size_t b = a + 1; b < r.placements.size(); ++b) {
      const RegionPlacement& p = r.placements[a];
      const RegionPlacement& q = r.placements[b];
      if (p.width == 0 || q.width == 0) continue;
      const bool row_overlap =
          p.row < q.row + q.height && q.row < p.row + p.height;
      const bool col_overlap =
          p.col < q.col + q.width && q.col < p.col + p.width;
      EXPECT_FALSE(row_overlap && col_overlap)
          << "regions " << p.region << " and " << q.region << " overlap";
    }
  }
}

TEST(Floorplanner, RectanglesStayInBounds) {
  const Device d("test", {1200, 16, 16}, 3);
  const Floorplanner fp(d);
  const FloorplanResult r = fp.place({{20, 2, 1}, {10, 1, 1}});
  ASSERT_TRUE(r.success);
  for (const RegionPlacement& p : r.placements) {
    EXPECT_LE(p.row + p.height, d.rows());
    EXPECT_LE(p.col + p.width, d.columns().size());
  }
}

TEST(Floorplanner, ZeroAreaRegionAlwaysPlaces) {
  const Device d("test", {400, 4, 8}, 1);
  const Floorplanner fp(d);
  const FloorplanResult r = fp.place({TileCount{0, 0, 0}});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.placements[0].width, 0u);
}

TEST(Floorplanner, FailureReportsRegion) {
  const Device d("test", {400, 4, 8}, 1);
  const Floorplanner fp(d);
  // Needs more BRAM tiles than the whole device has.
  const FloorplanResult r = fp.place({TileCount{1, 50, 0}});
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failed_region, 0u);
}

TEST(Floorplanner, ResourceFitButFragmentationFailure) {
  // Total resources suffice but no single rectangle can provide the mix:
  // this is exactly the feasibility gap the paper's future-work feedback
  // loop addresses.
  const Device d("test", {400, 8, 0}, 1);  // 1 row, BRAM columns at fixed spots
  const Floorplanner fp(d);
  // Two regions each wanting both BRAM columns: impossible.
  const FloorplanResult r = fp.place({{1, 2, 0}, {1, 2, 0}});
  EXPECT_FALSE(r.success);
}

TEST(Floorplanner, CaseStudyProposedSchemeFloorplansOnFX70T) {
  const Design design = synth::wireless_receiver_design();
  PartitionerOptions opt;
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 4'000'000;
  const PartitionerResult pr =
      partition_design(design, synth::wireless_receiver_budget(), opt);
  ASSERT_TRUE(pr.feasible);
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const Floorplanner fp(lib.by_name("XC5VFX70T"));
  const FloorplanResult r = fp.place_scheme(pr.proposed.eval);
  EXPECT_TRUE(r.success);
}

TEST(Floorplanner, BestFitNeverWastesMoreThanFirstFit) {
  const Device d("test", {2000, 24, 24}, 4);
  const std::vector<TileCount> need = {
      {10, 1, 0}, {5, 0, 1}, {8, 1, 1}, {12, 0, 0}, {3, 1, 1}};
  const FloorplanResult first = Floorplanner(d).place(need);
  const FloorplanResult best =
      Floorplanner(d, {PlacementStrategy::BestFit}).place(need);
  ASSERT_TRUE(first.success);
  ASSERT_TRUE(best.success);
  const FloorplanStats fs = floorplan_stats(d, need, first.placements);
  const FloorplanStats bs = floorplan_stats(d, need, best.placements);
  EXPECT_LE(bs.waste_frames, fs.waste_frames);
}

TEST(Floorplanner, BestFitPlacementsStillCoverAndStayDisjoint) {
  const Device d("test", {2000, 24, 24}, 4);
  const std::vector<TileCount> need = {{10, 1, 0}, {5, 0, 1}, {8, 1, 1}};
  const FloorplanResult r =
      Floorplanner(d, {PlacementStrategy::BestFit}).place(need);
  ASSERT_TRUE(r.success);
  for (const RegionPlacement& p : r.placements) {
    EXPECT_GE(p.provided.clb_tiles, need[p.region].clb_tiles);
    EXPECT_GE(p.provided.bram_tiles, need[p.region].bram_tiles);
    EXPECT_GE(p.provided.dsp_tiles, need[p.region].dsp_tiles);
  }
  for (std::size_t a = 0; a < r.placements.size(); ++a)
    for (std::size_t b = a + 1; b < r.placements.size(); ++b) {
      const RegionPlacement& p = r.placements[a];
      const RegionPlacement& q = r.placements[b];
      const bool overlap = p.row < q.row + q.height &&
                           q.row < p.row + p.height &&
                           p.col < q.col + q.width && q.col < p.col + p.width;
      EXPECT_FALSE(overlap);
    }
}

TEST(Floorplanner, StatsAccounting) {
  const Device d("test", {800, 8, 8}, 2);
  const std::vector<TileCount> need = {{3, 0, 0}};
  const FloorplanResult r = Floorplanner(d).place(need);
  ASSERT_TRUE(r.success);
  const FloorplanStats s = floorplan_stats(d, need, r.placements);
  EXPECT_EQ(s.required_frames, need[0].frames());
  EXPECT_GE(s.provided_frames, s.required_frames);
  EXPECT_EQ(s.waste_frames, s.provided_frames - s.required_frames);
  EXPECT_GT(s.device_utilization, 0.0);
  EXPECT_LE(s.device_utilization, 1.0);
}

TEST(Floorplanner, UcfMentionsEveryPlacedRegion) {
  const Device d("test", {2000, 24, 24}, 4);
  const Floorplanner fp(d);
  const FloorplanResult r = fp.place({{10, 1, 0}, {5, 0, 1}});
  ASSERT_TRUE(r.success);
  const std::string ucf = to_ucf(d, r.placements);
  EXPECT_NE(ucf.find("pblock_PRR1"), std::string::npos);
  EXPECT_NE(ucf.find("pblock_PRR2"), std::string::npos);
  EXPECT_NE(ucf.find("MODE = RECONFIG"), std::string::npos);
  EXPECT_NE(ucf.find("SLICE_X"), std::string::npos);
}

}  // namespace
}  // namespace prpart
