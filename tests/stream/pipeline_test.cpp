#include "stream/pipeline.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace prpart {
namespace {

std::vector<StageSpec> chain(std::initializer_list<std::uint32_t> rates,
                             std::size_t fifo = 4) {
  std::vector<StageSpec> stages;
  int i = 0;
  for (std::uint32_t r : rates)
    stages.push_back({"s" + std::to_string(i++), r, fifo});
  return stages;
}

TEST(Pipeline, SingleFastStageKeepsUp) {
  StreamingPipeline p(chain({1}), 1);
  p.run(1000);
  EXPECT_EQ(p.stats().dropped, 0u);
  // Latency-offset steady state: delivered within a couple of items of
  // arrivals.
  EXPECT_GE(p.stats().delivered + 3, p.stats().arrived);
}

TEST(Pipeline, ThroughputBoundedByBottleneck) {
  // Middle stage needs 3 cycles/item while items arrive every cycle: the
  // chain delivers ~1/3 of arrivals and drops the rest.
  StreamingPipeline p(chain({1, 3, 1}), 1);
  p.run(30000);
  const double rate = static_cast<double>(p.stats().delivered) /
                      static_cast<double>(p.stats().cycles);
  EXPECT_NEAR(rate, 1.0 / 3, 0.01);
  EXPECT_GT(p.stats().dropped, 0u);
  EXPECT_DOUBLE_EQ(p.throughput_bound(), 1.0 / 3);
}

TEST(Pipeline, MatchedRatesLoseNothing) {
  // Arrivals every 3 cycles through a 3-cycle bottleneck: sustainable.
  StreamingPipeline p(chain({1, 3, 2}), 3);
  p.run(30000);
  EXPECT_EQ(p.stats().dropped, 0u);
}

TEST(Pipeline, ConservationOfItems) {
  StreamingPipeline p(chain({2, 1, 3}), 2);
  p.run(5000);
  std::uint64_t in_flight = 0;
  for (std::size_t s = 0; s < p.stages(); ++s) in_flight += p.occupancy(s);
  // accepted = delivered + buffered (+ up to one busy item per stage).
  EXPECT_GE(p.stats().accepted, p.stats().delivered + in_flight);
  EXPECT_LE(p.stats().accepted,
            p.stats().delivered + in_flight + p.stages());
  EXPECT_EQ(p.stats().arrived, p.stats().accepted + p.stats().dropped);
}

TEST(Pipeline, OfflineStageStallsAndFifosBuffer) {
  StreamingPipeline p(chain({1, 1}, /*fifo=*/8), 1);
  p.run(100);
  const std::uint64_t delivered_before = p.stats().delivered;
  p.set_offline(1, true);
  p.run(6);  // shorter than the FIFO depth: absorbed
  p.set_offline(1, false);
  p.run(200);
  EXPECT_EQ(p.stats().dropped, 0u);  // the FIFO hid the outage
  EXPECT_GT(p.stats().delivered, delivered_before);
}

TEST(Pipeline, LongOutageOverflowsFifoAndDrops) {
  StreamingPipeline p(chain({1, 1}, /*fifo=*/8), 1);
  p.run(100);
  p.set_offline(0, true);
  p.run(50);  // much longer than the head FIFO
  EXPECT_GT(p.stats().dropped, 30u);
  p.set_offline(0, false);
  const std::uint64_t dropped = p.stats().dropped;
  p.run(200);
  // Recovery: at most the one arrival racing the first dequeue is lost.
  EXPECT_LE(p.stats().dropped, dropped + 1);
}

TEST(Pipeline, OfflineStagePreservesState) {
  StreamingPipeline p(chain({1, 2, 1}), 2);
  p.run(57);
  p.set_offline(1, true);
  const std::size_t held = p.occupancy(1);
  p.run(1);  // upstream may add one more item to the offline stage's FIFO
  EXPECT_GE(p.occupancy(1), held);
  EXPECT_TRUE(p.offline(1));
  p.set_offline(1, false);
  EXPECT_FALSE(p.offline(1));
}

TEST(Pipeline, Validation) {
  EXPECT_THROW(StreamingPipeline({}, 1), InternalError);
  EXPECT_THROW(StreamingPipeline(chain({1}), 0), InternalError);
  EXPECT_THROW(StreamingPipeline({{"x", 0, 4}}, 1), InternalError);
  EXPECT_THROW(StreamingPipeline({{"x", 1, 0}}, 1), InternalError);
  StreamingPipeline p(chain({1}), 1);
  EXPECT_THROW(p.set_offline(5, true), InternalError);
  EXPECT_THROW(p.occupancy(5), InternalError);
}

TEST(Pipeline, DeepChainPipelinesOneItemPerCycle) {
  StreamingPipeline p(chain({1, 1, 1, 1, 1, 1, 1, 1}), 1);
  p.run(10000);
  const double rate = static_cast<double>(p.stats().delivered) /
                      static_cast<double>(p.stats().cycles);
  EXPECT_NEAR(rate, 1.0, 0.01);
}

}  // namespace
}  // namespace prpart
