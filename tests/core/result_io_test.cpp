#include "core/result_io.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/connectivity.hpp"
#include "core/partitioner.hpp"
#include "synth/ip_library.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

struct Fixture {
  Design design = paper_example();
  PartitionerResult result = partition_design(design, {900, 8, 16});
};

TEST(ResultIo, RoundTripsProposedScheme) {
  Fixture f;
  ASSERT_TRUE(f.result.feasible);
  const std::string xml =
      partitioning_to_xml(f.design, f.result.base_partitions,
                          f.result.proposed.scheme, f.result.proposed.eval);
  const PartitionScheme loaded =
      partitioning_from_xml(f.design, f.result.base_partitions, xml);

  const ConnectivityMatrix matrix(f.design);
  const SchemeEvaluation eval = evaluate_scheme(
      f.design, matrix, f.result.base_partitions, loaded, {900, 8, 16});
  ASSERT_TRUE(eval.valid) << eval.invalid_reason;
  EXPECT_EQ(eval.total_frames, f.result.proposed.eval.total_frames);
  EXPECT_EQ(eval.worst_frames, f.result.proposed.eval.worst_frames);
  EXPECT_EQ(eval.total_resources, f.result.proposed.eval.total_resources);
  EXPECT_EQ(loaded.regions.size(), f.result.proposed.scheme.regions.size());
  EXPECT_EQ(loaded.static_members.size(),
            f.result.proposed.scheme.static_members.size());
}

TEST(ResultIo, RoundTripsCaseStudy) {
  const Design design = synth::wireless_receiver_design();
  PartitionerOptions opt;
  opt.search.max_move_evaluations = 500'000;
  const PartitionerResult r = partition_design(design, {6800, 64, 150}, opt);
  ASSERT_TRUE(r.feasible);
  const std::string xml = partitioning_to_xml(
      design, r.base_partitions, r.proposed.scheme, r.proposed.eval);
  const PartitionScheme loaded =
      partitioning_from_xml(design, r.base_partitions, xml);
  const ConnectivityMatrix matrix(design);
  const SchemeEvaluation eval = evaluate_scheme(
      design, matrix, r.base_partitions, loaded, {6800, 64, 150});
  EXPECT_EQ(eval.total_frames, r.proposed.eval.total_frames);
}

TEST(ResultIo, RejectsWrongDesign) {
  Fixture f;
  const std::string xml =
      partitioning_to_xml(f.design, f.result.base_partitions,
                          f.result.proposed.scheme, f.result.proposed.eval);
  const Design other = testing::fig3_example();
  const ConnectivityMatrix m(other);
  const auto other_partitions = enumerate_base_partitions(other, m);
  EXPECT_THROW(partitioning_from_xml(other, other_partitions, xml),
               ParseError);
}

TEST(ResultIo, RejectsUnknownMode) {
  Fixture f;
  const char* doc = R"(<partitioning design="paper-example">
    <region id="1"><partition><mode module="A" name="A9"/></partition></region>
  </partitioning>)";
  EXPECT_THROW(
      partitioning_from_xml(f.design, f.result.base_partitions, doc),
      ParseError);
}

TEST(ResultIo, RejectsNonCooccurringModeSet) {
  Fixture f;
  // A1 and A2 never co-occur: not a base partition.
  const char* doc = R"(<partitioning design="paper-example">
    <region id="1"><partition>
      <mode module="A" name="A1"/><mode module="A" name="A2"/>
    </partition></region>
  </partitioning>)";
  EXPECT_THROW(
      partitioning_from_xml(f.design, f.result.base_partitions, doc),
      ParseError);
}

TEST(ResultIo, RejectsEmptyDocument) {
  Fixture f;
  EXPECT_THROW(partitioning_from_xml(f.design, f.result.base_partitions,
                                     "<partitioning design=\"paper-example\"/>"),
               ParseError);
  EXPECT_THROW(
      partitioning_from_xml(f.design, f.result.base_partitions, "<other/>"),
      ParseError);
}

}  // namespace
}  // namespace prpart
