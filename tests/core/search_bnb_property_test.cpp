// Property suite for the branch-and-bound search against the exhaustive
// baseline (SearchOptions::use_bounding = false reproduces the pre-bounding
// unit schedule exactly):
//
//  * with the evaluation budget not binding, pruning is invisible — schemes,
//    alternatives, and objective values are byte-identical, across synthetic
//    seeds, the paper example, the §V case study, and non-uniform transition
//    weights;
//  * when the budget binds, pruning may only help (it spends the budget on
//    non-dominated units): the bounded result is never worse;
//  * the move table is a pure wall-clock lever: the full deterministic
//    fingerprint (results and counters, including truncation points) is
//    identical with the table on and off;
//  * cancellation unwinds with CancelledError in every mode — a cancelled
//    search can never be mistaken for a completed one.
#include "core/search.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "core/result_io.hpp"
#include "design/synthetic.hpp"
#include "synth/ip_library.hpp"
#include "tests/core/example_designs.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace prpart {
namespace {

using testing::paper_example;

struct Harness {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  CompatibilityTable compat;

  explicit Harness(Design d)
      : design(std::move(d)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix)),
        compat(matrix, partitions) {}

  SearchResult run(const ResourceVec& budget, SearchOptions opt) {
    return search_partitioning(design, matrix, partitions, compat, budget,
                               opt);
  }

  ResourceVec slack_budget() const {
    const ResourceVec lower =
        design.largest_configuration_area() + design.static_base();
    return {lower.clbs + lower.clbs / 3 + 200,
            lower.brams + lower.brams / 3 + 8,
            lower.dsps + lower.dsps / 3 + 8};
  }
};

/// The result bytes a run promises: the archived XML of the scheme and of
/// every ranked alternative, plus their objective values. Deliberately
/// excludes the stats (pruned units consume no evaluations, so counters
/// legitimately differ between the bounded and the exhaustive search).
std::string result_fingerprint(Harness& h, const ResourceVec& budget,
                               const SearchResult& r) {
  std::ostringstream out;
  out << "feasible=" << r.feasible << "\n";
  if (!r.feasible) return out.str();
  out << partitioning_to_xml(h.design, h.partitions, r.scheme, r.eval);
  for (const RankedScheme& alt : r.alternatives) {
    const SchemeEvaluation e =
        evaluate_scheme(h.design, h.matrix, h.partitions, alt.scheme, budget);
    out << "alternative=" << alt.total_frames << "\n"
        << partitioning_to_xml(h.design, h.partitions, alt.scheme, e);
  }
  return out.str();
}

/// Bounded vs exhaustive on one configuration. Byte-identical when the
/// evaluation budget did not bind; never worse when it did.
void expect_bounding_invisible(Harness& h, const ResourceVec& budget,
                               SearchOptions opt) {
  opt.use_bounding = false;
  const SearchResult exhaustive = h.run(budget, opt);
  opt.use_bounding = true;
  const SearchResult bounded = h.run(budget, opt);
  EXPECT_EQ(bounded.stats.units, exhaustive.stats.units);
  if (!exhaustive.stats.budget_exhausted &&
      !bounded.stats.budget_exhausted) {
    EXPECT_EQ(result_fingerprint(h, budget, bounded),
              result_fingerprint(h, budget, exhaustive));
    return;
  }
  // Budget bound: pruning redirects evaluations to non-dominated units, so
  // the bounded search explores a superset of the useful space.
  EXPECT_GE(bounded.feasible, exhaustive.feasible);
  if (bounded.feasible && exhaustive.feasible) {
    EXPECT_LE(bounded.alternatives.front().total_frames,
              exhaustive.alternatives.front().total_frames);
  }
}

PairWeights random_weights(std::size_t n, Rng& rng) {
  PairWeights w(n, std::vector<std::uint32_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      w[i][j] = w[j][i] = static_cast<std::uint32_t>(1 + rng.uniform(0, 6));
  return w;
}

TEST(SearchBnbProperty, PaperExampleMatchesExhaustive) {
  Harness h(paper_example());
  SearchOptions opt;
  opt.keep_alternatives = 6;
  expect_bounding_invisible(h, {900, 8, 16}, opt);
  expect_bounding_invisible(h, h.slack_budget(), opt);
  opt.allow_static_promotion = false;
  expect_bounding_invisible(h, h.slack_budget(), opt);
}

TEST(SearchBnbProperty, CaseStudyMatchesExhaustive) {
  Harness h(synth::wireless_receiver_design());
  SearchOptions opt;
  opt.max_candidate_sets = 64;
  opt.max_move_evaluations = 2'000'000;
  expect_bounding_invisible(h, {6800, 64, 150}, opt);
}

class SearchBnbSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SearchBnbSeeds, SyntheticDesignsMatchExhaustive) {
  Rng rng(GetParam());
  const auto cls = static_cast<CircuitClass>(GetParam() % 4);
  Harness h(generate_synthetic(rng, cls).design);
  SearchOptions opt;
  opt.max_move_evaluations = 400'000;  // keep the suite fast
  expect_bounding_invisible(h, h.slack_budget(), opt);

  // The same property under non-uniform transition weights, where the bound
  // runs on the weighted accumulators.
  Rng wrng(500 + GetParam());
  const PairWeights w = random_weights(h.matrix.configs(), wrng);
  opt.pair_weights = &w;
  expect_bounding_invisible(h, h.slack_budget(), opt);

  // And under a deliberately binding evaluation budget (the not-worse leg).
  opt.pair_weights = nullptr;
  opt.max_move_evaluations = 2'000;
  expect_bounding_invisible(h, h.slack_budget(), opt);
}

INSTANTIATE_TEST_SUITE_P(SyntheticSeeds, SearchBnbSeeds,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(SearchBnbProperty, PruningActuallyFires) {
  // The bound must earn its keep somewhere: across the paper example and
  // the synthetic seeds, at least one run prunes units. (Aggregated so the
  // test does not pin which design prunes — that may shift as the bound
  // tightens.)
  std::size_t pruned = 0;
  {
    Harness h(paper_example());
    pruned += h.run({900, 8, 16}, SearchOptions{}).stats.units_pruned;
  }
  for (std::uint64_t seed = 0; seed < 10 && pruned == 0; ++seed) {
    Rng rng(seed);
    Harness h(generate_synthetic(rng, static_cast<CircuitClass>(seed % 4))
                  .design);
    SearchOptions opt;
    opt.max_move_evaluations = 400'000;
    pruned += h.run(h.slack_budget(), opt).stats.units_pruned;
  }
  EXPECT_GT(pruned, 0u);
}

TEST(SearchBnbProperty, MoveTableIsPureWallClock) {
  // Full deterministic fingerprint — results AND counters, including the
  // budget truncation points — must be identical with the table on and off.
  Harness h(paper_example());
  for (std::uint64_t evals : {std::uint64_t{50}, std::uint64_t{1000},
                              std::uint64_t{1'000'000}}) {
    SearchOptions opt;
    opt.max_move_evaluations = evals;
    opt.threads = 1;
    opt.use_move_table = true;
    const SearchResult on = h.run({900, 8, 16}, opt);
    opt.use_move_table = false;
    const SearchResult off = h.run({900, 8, 16}, opt);
    EXPECT_EQ(result_fingerprint(h, {900, 8, 16}, on),
              result_fingerprint(h, {900, 8, 16}, off));
    EXPECT_EQ(on.stats.move_evaluations, off.stats.move_evaluations);
    EXPECT_EQ(on.stats.states_recorded, off.stats.states_recorded);
    EXPECT_EQ(on.stats.greedy_runs, off.stats.greedy_runs);
    EXPECT_EQ(on.stats.budget_exhausted, off.stats.budget_exhausted);
    EXPECT_EQ(on.stats.units_pruned, off.stats.units_pruned);
    // At threads=1 the scheduling-dependent split is exact too: every
    // consideration is either rescored or fresh, and the table only moves
    // considerations between the two buckets.
    EXPECT_EQ(off.stats.moves_rescored, 0u);
    EXPECT_GT(on.stats.moves_rescored, 0u);
    EXPECT_LT(on.stats.full_evaluations, off.stats.full_evaluations);
  }
}

TEST(SearchBnbProperty, CancellationThrowsInEveryMode) {
  Harness h(synth::wireless_receiver_design());
  for (const bool bounding : {true, false}) {
    CancelToken token;
    token.cancel();  // already fired: the very first poll must throw
    SearchOptions opt;
    opt.use_bounding = bounding;
    opt.cancel = &token;
    EXPECT_THROW(h.run({6800, 64, 150}, opt), CancelledError);
  }
  for (const bool bounding : {true, false}) {
    // Mid-search: a deadline far shorter than the case-study search's run
    // time fires between move evaluations (polled every 512).
    CancelToken token;
    SearchOptions opt;
    opt.use_bounding = bounding;
    opt.max_candidate_sets = 64;
    opt.max_move_evaluations = 100'000'000;
    opt.cancel = &token;
    token.set_timeout_ms(1);
    EXPECT_THROW(h.run({6800, 64, 150}, opt), CancelledError);
  }
}

}  // namespace
}  // namespace prpart
