#include "core/report.hpp"

#include <gtest/gtest.h>

#include "synth/ip_library.hpp"
#include "tests/core/example_designs.hpp"

namespace prpart {
namespace {

using testing::paper_example;

class ReportTest : public ::testing::Test {
 protected:
  Design design_ = paper_example();
  PartitionerResult result_ = partition_design(design_, {900, 8, 16});
};

TEST_F(ReportTest, BasePartitionTableListsEveryPartition) {
  const std::string t =
      render_base_partitions(design_, result_.base_partitions);
  for (const BasePartition& p : result_.base_partitions)
    EXPECT_NE(t.find(p.label(design_)), std::string::npos) << p.label(design_);
}

TEST_F(ReportTest, SchemePartitionTableShowsStaticRowOnlyWhenUsed) {
  PartitionScheme with_static = result_.proposed.scheme;
  if (with_static.static_members.empty())
    with_static.static_members.push_back(0);
  const std::string t1 = render_scheme_partitions(
      design_, result_.base_partitions, with_static);
  EXPECT_NE(t1.find("static"), std::string::npos);

  PartitionScheme without = result_.proposed.scheme;
  without.static_members.clear();
  const std::string t2 =
      render_scheme_partitions(design_, result_.base_partitions, without);
  EXPECT_EQ(t2.find("static"), std::string::npos);
}

TEST_F(ReportTest, ComparisonShowsAllFourRowsWhenFeasible) {
  ASSERT_TRUE(result_.feasible);
  const std::string t = render_scheme_comparison(result_);
  EXPECT_NE(t.find("Static"), std::string::npos);
  EXPECT_NE(t.find("Modular"), std::string::npos);
  EXPECT_NE(t.find("Single region"), std::string::npos);
  EXPECT_NE(t.find("Proposed"), std::string::npos);
  // Numbers carry thousands separators.
  EXPECT_NE(t.find(","), std::string::npos);
}

TEST_F(ReportTest, ComparisonOmitsProposedWhenInfeasible) {
  const PartitionerResult infeasible =
      partition_design(design_, {10, 0, 0});
  ASSERT_FALSE(infeasible.feasible);
  const std::string t = render_scheme_comparison(infeasible);
  EXPECT_NE(t.find("Static"), std::string::npos);
  EXPECT_EQ(t.find("Proposed"), std::string::npos);
}

TEST_F(ReportTest, FitColumnReflectsBudget) {
  const std::string t = render_scheme_comparison(result_);
  // Fully static never fits a 900-CLB budget for this design.
  EXPECT_NE(t.find("NO"), std::string::npos);
  EXPECT_NE(t.find("yes"), std::string::npos);
}

}  // namespace
}  // namespace prpart
