#include "core/search.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/clustering.hpp"
#include "core/schemes.hpp"
#include "tests/core/example_designs.hpp"

namespace prpart {
namespace {

using testing::fig3_example;
using testing::paper_example;

struct Harness {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  CompatibilityTable compat;

  explicit Harness(Design d)
      : design(std::move(d)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix)),
        compat(matrix, partitions) {}

  SearchResult run(const ResourceVec& budget, SearchOptions opt = {}) {
    return search_partitioning(design, matrix, partitions, compat, budget,
                               opt);
  }
};

TEST(Search, HugeBudgetGivesZeroReconfigurationTime) {
  // With unlimited area the static-equivalent allocation fits, so the best
  // total reconfiguration time is 0.
  Harness s(paper_example());
  const SearchResult r = s.run({1000000, 10000, 10000});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.eval.total_frames, 0u);
  EXPECT_TRUE(r.eval.fits);
  EXPECT_TRUE(r.eval.valid);
}

TEST(Search, ResultIsAlwaysValidAndFitting) {
  Harness s(paper_example());
  // Budget between single-region lower bound and the static sum.
  const ResourceVec lower =
      s.design.largest_configuration_area() + s.design.static_base();
  const ResourceVec budget{lower.clbs + 200, lower.brams + 2, lower.dsps + 4};
  const SearchResult r = s.run(budget);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.eval.valid);
  EXPECT_TRUE(r.eval.fits);
}

TEST(Search, TighterBudgetNeverImprovesTime) {
  // Any scheme that fits a tight budget also fits a looser one, so the
  // looser search result can never be worse. (The tight search may fail
  // entirely; then there is nothing to compare.)
  Harness s(paper_example());
  const ResourceVec lower =
      s.design.largest_configuration_area() + s.design.static_base();
  const ResourceVec loose{lower.clbs * 2, lower.brams * 2 + 8,
                          lower.dsps * 2 + 8};
  const ResourceVec tight{lower.clbs + 200, lower.brams + 2, lower.dsps + 4};
  const SearchResult rl = s.run(loose);
  const SearchResult rt = s.run(tight);
  ASSERT_TRUE(rl.feasible);
  if (rt.feasible) {
    EXPECT_LE(rl.eval.total_frames, rt.eval.total_frames);
  }
}

TEST(Search, InfeasibleBudgetReportsInfeasible) {
  Harness s(paper_example());
  const SearchResult r = s.run({10, 0, 0});
  EXPECT_FALSE(r.feasible);
}

TEST(Search, Fig3FindsHybridStyleSolution) {
  // §IV-A: with a budget that rules out the all-static arrangement but
  // allows more than the single region, the search should move small modes
  // to static and beat the modular scheme.
  Harness s(fig3_example());
  // Full static would be 1080 CLBs; modular two-region needs 900 (tile
  // rounded); single region needs 600. Budget 700 forces a hybrid.
  const ResourceVec budget{700, 10, 10};
  const SearchResult r = s.run(budget);
  ASSERT_TRUE(r.feasible);

  const PartitionScheme modular = make_modular_scheme(s.design, s.matrix,
                                                      s.partitions);
  const SchemeEvaluation me =
      evaluate_scheme(s.design, s.matrix, s.partitions, modular, budget);
  // Modular does not even fit in 700 CLBs; the search must find something
  // that fits and is cheaper than the single region's 3 * 600-tile cost.
  EXPECT_FALSE(me.fits);
  const auto [ss, se] = single_region_scheme(s.design, s.matrix, s.partitions,
                                             budget);
  EXPECT_LE(r.eval.total_frames, se.total_frames);
}

TEST(Search, StaticPromotionCanBeDisabled) {
  Harness s(paper_example());
  const ResourceVec budget{100000, 1000, 1000};
  SearchOptions no_promo;
  no_promo.allow_static_promotion = false;
  const SearchResult r = s.run(budget, no_promo);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.scheme.static_members.empty());
  // With promotion allowed, the scheme may use static members; both must
  // reach zero total time on an unconstrained budget.
  const SearchResult rp = s.run(budget);
  EXPECT_EQ(r.eval.total_frames, 0u);
  EXPECT_EQ(rp.eval.total_frames, 0u);
}

TEST(Search, EvaluationBudgetIsHonoured) {
  Harness s(paper_example());
  SearchOptions opt;
  opt.max_move_evaluations = 50;
  const SearchResult r = s.run({100000, 1000, 1000}, opt);
  EXPECT_TRUE(r.stats.budget_exhausted);
  EXPECT_LE(r.stats.move_evaluations, 51u);
}

TEST(Search, StatsArebPopulated) {
  Harness s(paper_example());
  const SearchResult r = s.run({100000, 1000, 1000});
  EXPECT_GT(r.stats.move_evaluations, 0u);
  EXPECT_GT(r.stats.candidate_sets, 0u);
  EXPECT_GT(r.stats.greedy_runs, 0u);
  EXPECT_GT(r.stats.states_recorded, 0u);
}

TEST(Search, DeterministicAcrossRuns) {
  Harness s(paper_example());
  const ResourceVec budget{800, 6, 16};
  const SearchResult a = s.run(budget);
  const SearchResult b = s.run(budget);
  EXPECT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_EQ(a.eval.total_frames, b.eval.total_frames);
    EXPECT_EQ(a.eval.total_resources, b.eval.total_resources);
    EXPECT_EQ(a.stats.move_evaluations, b.stats.move_evaluations);
  }
}

TEST(Search, NoRegionHoldsIncompatiblePartitions) {
  Harness s(paper_example());
  const ResourceVec lower =
      s.design.largest_configuration_area() + s.design.static_base();
  const SearchResult r = s.run(
      {lower.clbs + lower.clbs / 2, lower.brams + 4, lower.dsps + 8});
  ASSERT_TRUE(r.feasible);
  for (const Region& region : r.scheme.regions)
    for (std::size_t i = 0; i < region.members.size(); ++i)
      for (std::size_t j = i + 1; j < region.members.size(); ++j)
        EXPECT_TRUE(s.compat.compatible(region.members[i], region.members[j]));
}

TEST(Search, AlternativesAreSortedAndDistinct) {
  Harness s(paper_example());
  SearchOptions opt;
  opt.keep_alternatives = 6;
  const SearchResult r = s.run({900, 8, 16}, opt);
  ASSERT_TRUE(r.feasible);
  ASSERT_FALSE(r.alternatives.empty());
  EXPECT_LE(r.alternatives.size(), 6u);
  // Ascending objective; first entry is the proposed scheme's cost.
  EXPECT_EQ(r.alternatives.front().total_frames, r.eval.total_frames);
  for (std::size_t i = 1; i < r.alternatives.size(); ++i)
    EXPECT_GE(r.alternatives[i].total_frames,
              r.alternatives[i - 1].total_frames);
  // Distinct groupings: compare rendered region sets.
  for (std::size_t i = 0; i < r.alternatives.size(); ++i)
    for (std::size_t j = i + 1; j < r.alternatives.size(); ++j) {
      const auto& a = r.alternatives[i].scheme;
      const auto& b = r.alternatives[j].scheme;
      const bool same_regions =
          a.regions.size() == b.regions.size() &&
          a.static_members == b.static_members;
      if (!same_regions) continue;
      bool identical = true;
      for (std::size_t k = 0; k < a.regions.size(); ++k) {
        auto am = a.regions[k].members;
        auto bm = b.regions[k].members;
        std::sort(am.begin(), am.end());
        std::sort(bm.begin(), bm.end());
        identical = identical && am == bm;
      }
      EXPECT_FALSE(identical) << "alternatives " << i << " and " << j
                              << " are the same grouping";
    }
}

TEST(Search, EveryAlternativeEvaluatesValidAndFitting) {
  Harness s(paper_example());
  SearchOptions opt;
  opt.keep_alternatives = 5;
  const ResourceVec budget{900, 8, 16};
  const SearchResult r = s.run(budget, opt);
  ASSERT_TRUE(r.feasible);
  for (const RankedScheme& alt : r.alternatives) {
    const SchemeEvaluation e =
        evaluate_scheme(s.design, s.matrix, s.partitions, alt.scheme, budget);
    EXPECT_TRUE(e.valid) << e.invalid_reason;
    EXPECT_TRUE(e.fits);
    EXPECT_EQ(e.total_frames, alt.total_frames);
  }
}

TEST(Search, MaxCandidateSetsLimitsWork) {
  Harness s(paper_example());
  SearchOptions one;
  one.max_candidate_sets = 1;
  const SearchResult r1 = s.run({100000, 1000, 1000}, one);
  EXPECT_EQ(r1.stats.candidate_sets, 1u);
  SearchOptions many;
  many.max_candidate_sets = 8;
  const SearchResult r8 = s.run({100000, 1000, 1000}, many);
  EXPECT_GT(r8.stats.candidate_sets, 1u);
  // More candidate sets can only improve (or match) the result.
  EXPECT_LE(r8.eval.total_frames, r1.eval.total_frames);
}

}  // namespace
}  // namespace prpart
