#include "core/partitioner.hpp"

#include <gtest/gtest.h>

#include "design/synthetic.hpp"
#include "device/tiles.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

TEST(Partitioner, ProducesAllFourSchemes) {
  const Design d = paper_example();
  const PartitionerResult r = partition_design(d, {100000, 1000, 1000});
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed_from_search);
  EXPECT_EQ(r.modular.name, "Modular");
  EXPECT_EQ(r.single_region.name, "Single region");
  EXPECT_EQ(r.static_impl.name, "Static");
  EXPECT_FALSE(r.base_partitions.empty());
}

TEST(Partitioner, ProposedNeverWorseThanSingleRegion) {
  const Design d = paper_example();
  for (std::uint32_t budget_clbs : {700u, 900u, 1200u, 2000u}) {
    const PartitionerResult r =
        partition_design(d, {budget_clbs, 10, 16});
    if (!r.feasible) continue;
    EXPECT_LE(r.proposed.eval.total_frames,
              r.single_region.eval.total_frames)
        << "budget " << budget_clbs;
    EXPECT_TRUE(r.proposed.eval.fits);
  }
}

TEST(Partitioner, InfeasibleBudgetReported) {
  const Design d = paper_example();
  const PartitionerResult r = partition_design(d, {100, 1, 1});
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.single_region.eval.fits);
}

TEST(Partitioner, FallbackToSingleRegionWhenSearchCannotBeat) {
  // A budget exactly at the single-region lower bound leaves no slack: the
  // proposed scheme degenerates to the single region.
  const Design d = paper_example();
  const ResourceVec lower = tiles_for(d.largest_configuration_area()).resources();
  const PartitionerResult r = partition_design(d, lower);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed.eval.fits);
  EXPECT_LE(r.proposed.eval.total_frames,
            r.single_region.eval.total_frames);
}

TEST(DeviceSearch, PicksSmallestWorkableDevice) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  // A small design should land on the smallest device.
  const Design d = testing::fig3_example();
  const DevicePartitionResult r = partition_on_smallest_device(d, lib);
  ASSERT_NE(r.device, nullptr);
  EXPECT_EQ(r.chosen_index, 0u);
  EXPECT_FALSE(r.escalated);
  EXPECT_TRUE(r.result.feasible);
}

TEST(DeviceSearch, HugeDesignThrows) {
  const Design d = DesignBuilder("huge")
                       .module("X", {{"X1", {50000, 0, 0}}})
                       .configuration({{"X", "X1"}})
                       .build();
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  EXPECT_THROW(partition_on_smallest_device(d, lib), DeviceError);
}

TEST(DeviceSearch, ChosenIndexAlwaysAtLeastFirstFeasible) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const auto suite = generate_synthetic_suite(101, 12);
  PartitionerOptions fast;
  fast.search.max_move_evaluations = 100000;
  for (const SyntheticDesign& s : suite) {
    const DevicePartitionResult r =
        partition_on_smallest_device(s.design, lib, fast);
    EXPECT_GE(r.chosen_index, r.first_feasible_index);
    EXPECT_EQ(r.escalated, r.chosen_index != r.first_feasible_index);
    EXPECT_TRUE(r.result.feasible);
  }
}

TEST(DeviceSearch, EscalationOnlyWhenSearchFailsOnSmallerDevice) {
  const DeviceLibrary lib = DeviceLibrary::virtex5();
  const auto suite = generate_synthetic_suite(202, 8);
  PartitionerOptions fast;
  fast.search.max_move_evaluations = 100000;
  for (const SyntheticDesign& s : suite) {
    const DevicePartitionResult r =
        partition_on_smallest_device(s.design, lib, fast);
    if (r.escalated) {
      // The device actually chosen must host a search-found scheme, unless
      // we ran off the end of the library.
      if (r.chosen_index + 1 < lib.devices().size()) {
        EXPECT_TRUE(r.result.proposed_from_search);
      }
    }
  }
}

}  // namespace
}  // namespace prpart
