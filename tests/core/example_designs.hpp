#pragma once

#include "design/builder.hpp"
#include "design/design.hpp"

namespace prpart::testing {

/// The running example of the paper's §III/§IV: modules A (3 modes),
/// B (2 modes), C (3 modes) and the five valid configurations
///   S->A3->B2->C3, S->A1->B1->C1, S->A3->B2->C1,
///   S->A1->B2->C2, S->A2->B2->C3.
/// Mode areas are not given in the paper; the values here are chosen so
/// that no two modes are interchangeable in area.
inline Design paper_example() {
  return DesignBuilder("paper-example")
      .static_base({0, 0, 0})
      .module("A", {{"A1", {100, 0, 0}},
                    {"A2", {260, 1, 2}},
                    {"A3", {180, 0, 4}}})
      .module("B", {{"B1", {400, 2, 0}}, {"B2", {90, 0, 1}}})
      .module("C", {{"C1", {150, 1, 0}},
                    {"C2", {310, 0, 8}},
                    {"C3", {55, 0, 0}}})
      .configuration({{"A", "A3"}, {"B", "B2"}, {"C", "C3"}})
      .configuration({{"A", "A1"}, {"B", "B1"}, {"C", "C1"}})
      .configuration({{"A", "A3"}, {"B", "B2"}, {"C", "C1"}})
      .configuration({{"A", "A1"}, {"B", "B2"}, {"C", "C2"}})
      .configuration({{"A", "A2"}, {"B", "B2"}, {"C", "C3"}})
      .build();
}

/// The §IV-D special case: no mode relations, two configurations
///   1) CAN (C) -> FIR (F)      2) Ethernet (E) -> FPU (P) -> CRC (R),
/// each module having a single mode and absent (mode 0) elsewhere.
inline Design one_off_modules() {
  return DesignBuilder("one-off")
      .module("C", {{"C1", {120, 1, 0}}})
      .module("F", {{"F1", {200, 0, 6}}})
      .module("E", {{"E1", {340, 4, 0}}})
      .module("P", {{"P1", {500, 0, 12}}})
      .module("R", {{"R1", {60, 0, 0}}})
      .configuration({{"C", "C1"}, {"F", "F1"}})
      .configuration({{"E", "E1"}, {"P", "P1"}, {"R", "R1"}})
      .build();
}

/// The two-module example of §IV-A (Fig. 3): A has a small (A1) and a large
/// (A2) mode, B has a large (B1) and a small (B2) mode, and the three valid
/// configurations are A1->B1, A2->B2, A1->B2 (the largest modes never
/// co-exist).
inline Design fig3_example() {
  return DesignBuilder("fig3")
      .module("A", {{"A1", {100, 0, 0}}, {"A2", {400, 0, 0}}})
      .module("B", {{"B1", {500, 0, 0}}, {"B2", {80, 0, 0}}})
      .configuration({{"A", "A1"}, {"B", "B1"}})
      .configuration({{"A", "A2"}, {"B", "B2"}})
      .configuration({{"A", "A1"}, {"B", "B2"}})
      .build();
}

}  // namespace prpart::testing
