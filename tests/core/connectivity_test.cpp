#include "core/connectivity.hpp"

#include <gtest/gtest.h>

#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::one_off_modules;
using testing::paper_example;

class ConnectivityPaperExample : public ::testing::Test {
 protected:
  Design design_ = paper_example();
  ConnectivityMatrix matrix_{design_};

  std::size_t id(const char* module, std::uint32_t mode) const {
    const std::uint32_t mi = module[0] == 'A' ? 0 : module[0] == 'B' ? 1 : 2;
    return design_.global_mode_id(mi, mode);
  }
};

TEST_F(ConnectivityPaperExample, Shape) {
  EXPECT_EQ(matrix_.configs(), 5u);
  EXPECT_EQ(matrix_.modes(), 8u);
}

TEST_F(ConnectivityPaperExample, MatrixMatchesSectionIVC) {
  // The 5x8 matrix printed in §IV-C, columns A1 A2 A3 B1 B2 C1 C2 C3.
  const bool expected[5][8] = {
      {0, 0, 1, 0, 1, 0, 0, 1},  // Conf.1
      {1, 0, 0, 1, 0, 1, 0, 0},  // Conf.2
      {0, 0, 1, 0, 1, 1, 0, 0},  // Conf.3
      {1, 0, 0, 0, 1, 0, 1, 0},  // Conf.4
      {0, 1, 0, 0, 1, 0, 0, 1},  // Conf.5
  };
  for (std::size_t c = 0; c < 5; ++c)
    for (std::size_t m = 0; m < 8; ++m)
      EXPECT_EQ(matrix_.at(c, m), expected[c][m])
          << "config " << c << " mode " << m;
}

TEST_F(ConnectivityPaperExample, NodeWeightsMatchPaper) {
  // "For mode A1 in the example, the node weight is 2 and for B2, it is 4."
  EXPECT_EQ(matrix_.node_weight(id("A", 1)), 2u);
  EXPECT_EQ(matrix_.node_weight(id("A", 2)), 1u);
  EXPECT_EQ(matrix_.node_weight(id("A", 3)), 2u);
  EXPECT_EQ(matrix_.node_weight(id("B", 1)), 1u);
  EXPECT_EQ(matrix_.node_weight(id("B", 2)), 4u);
  EXPECT_EQ(matrix_.node_weight(id("C", 1)), 2u);
  EXPECT_EQ(matrix_.node_weight(id("C", 2)), 1u);
  EXPECT_EQ(matrix_.node_weight(id("C", 3)), 2u);
}

TEST_F(ConnectivityPaperExample, EdgeWeightsMatchPaper) {
  // "For modes A1,B1 the edge weight is 1 and for B2,C3 it is 2."
  EXPECT_EQ(matrix_.edge_weight(id("A", 1), id("B", 1)), 1u);
  EXPECT_EQ(matrix_.edge_weight(id("B", 2), id("C", 3)), 2u);
  EXPECT_EQ(matrix_.edge_weight(id("A", 3), id("B", 2)), 2u);
  // Same-module modes never co-occur.
  EXPECT_EQ(matrix_.edge_weight(id("A", 1), id("A", 2)), 0u);
  // Symmetric.
  EXPECT_EQ(matrix_.edge_weight(id("B", 2), id("A", 3)), 2u);
}

TEST_F(ConnectivityPaperExample, OccupancyTracksIntersection) {
  DynBitset modes(matrix_.modes());
  modes.set(id("B", 1));
  const DynBitset occ = matrix_.occupancy(modes);
  EXPECT_EQ(occ.count(), 1u);
  EXPECT_TRUE(occ.test(1));  // Conf.2

  modes.set(id("B", 2));
  EXPECT_EQ(matrix_.occupancy(modes).count(), 5u);  // whole module B
}

TEST_F(ConnectivityPaperExample, CooccurrenceCountsSubsets) {
  DynBitset pair(matrix_.modes());
  pair.set(id("A", 3));
  pair.set(id("B", 2));
  EXPECT_EQ(matrix_.cooccurrence(pair), 2u);  // Conf.1 and Conf.3
  pair.set(id("C", 2));
  EXPECT_EQ(matrix_.cooccurrence(pair), 0u);
}

TEST(Connectivity, OneOffModulesGetNoMode0Column) {
  const Design d = one_off_modules();
  const ConnectivityMatrix m(d);
  // 5 single-mode modules: exactly 5 columns, none for mode 0.
  EXPECT_EQ(m.modes(), 5u);
  EXPECT_EQ(m.configs(), 2u);
  // Row 0: C,F only; row 1: E,P,R only.
  EXPECT_EQ(m.row(0).count(), 2u);
  EXPECT_EQ(m.row(1).count(), 3u);
  EXPECT_FALSE(m.row(0).intersects(m.row(1)));
}

TEST(Connectivity, IndexChecks) {
  const Design d = one_off_modules();
  const ConnectivityMatrix m(d);
  EXPECT_THROW(m.row(2), InternalError);
  EXPECT_THROW(m.node_weight(5), InternalError);
  EXPECT_THROW(m.edge_weight(0, 5), InternalError);
}

}  // namespace
}  // namespace prpart
