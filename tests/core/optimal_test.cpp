#include "core/optimal.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/covering.hpp"
#include "core/schemes.hpp"
#include "core/search.hpp"
#include "design/synthetic.hpp"
#include "tests/core/example_designs.hpp"

namespace prpart {
namespace {

using testing::fig3_example;
using testing::one_off_modules;
using testing::paper_example;

struct Harness {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  CompatibilityTable compat;

  explicit Harness(Design d)
      : design(std::move(d)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix)),
        compat(matrix, partitions) {}
};

TEST(Optimal, HugeBudgetReachesZero) {
  Harness h(paper_example());
  const OptimalResult r = optimal_mode_level_partitioning(
      h.design, h.matrix, h.partitions, h.compat, {100000, 1000, 1000});
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.exhausted);
  EXPECT_EQ(r.eval.total_frames, 0u);
}

TEST(Optimal, InfeasibleBudgetReported) {
  Harness h(paper_example());
  const OptimalResult r = optimal_mode_level_partitioning(
      h.design, h.matrix, h.partitions, h.compat, {10, 0, 0});
  EXPECT_FALSE(r.feasible);
}

TEST(Optimal, ResultIsValidAndFitting) {
  Harness h(paper_example());
  const ResourceVec budget{900, 8, 16};
  const OptimalResult r = optimal_mode_level_partitioning(
      h.design, h.matrix, h.partitions, h.compat, budget);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.eval.valid);
  EXPECT_TRUE(r.eval.fits);
  EXPECT_TRUE(r.eval.total_resources.fits_in(budget));
}

TEST(Optimal, HeuristicOnSameCandidateSetNeverBeatsOptimal) {
  // Restricted to the first candidate set, the heuristic explores a subset
  // of the optimal enumeration's states.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SyntheticOptions small;
    small.max_modules = 3;
    small.max_modes = 3;
    Rng rng(seed);
    Harness h(generate_synthetic(rng, static_cast<CircuitClass>(seed % 4),
                                 small)
                  .design);
    const ResourceVec lower =
        h.design.largest_configuration_area() + h.design.static_base();
    const ResourceVec budget{lower.clbs + lower.clbs / 2, lower.brams + 6,
                             lower.dsps + 6};

    const OptimalResult opt = optimal_mode_level_partitioning(
        h.design, h.matrix, h.partitions, h.compat, budget);
    if (!opt.feasible || opt.exhausted) continue;

    SearchOptions one_set;
    one_set.max_candidate_sets = 1;
    const SearchResult heur = search_partitioning(
        h.design, h.matrix, h.partitions, h.compat, budget, one_set);
    if (heur.feasible) {
      EXPECT_LE(opt.eval.total_frames, heur.eval.total_frames)
          << "seed " << seed;
    }
  }
}

TEST(Optimal, Fig3FindsTheHybrid) {
  // §IV-A's hand analysis: with a 700-CLB budget, the best mode-level
  // arrangement moves the small modes static and keeps {A2, B1} in a
  // shared region.
  Harness h(fig3_example());
  const OptimalResult r = optimal_mode_level_partitioning(
      h.design, h.matrix, h.partitions, h.compat, {700, 10, 10});
  ASSERT_TRUE(r.feasible);
  // The hybrid costs one 25-tile region's reconfiguration for exactly one
  // configuration pair: 25 * 36 = 900 frames. (A1 and B2 may equivalently
  // sit in their own never-reconfigured regions or in the static logic.)
  EXPECT_EQ(r.eval.total_frames, 900u);
  bool has_a2_b1_region = false;
  for (const Region& region : r.scheme.regions)
    if (region.members.size() == 2) has_a2_b1_region = true;
  EXPECT_TRUE(has_a2_b1_region);
}

TEST(Optimal, OneOffModulesSplitIntoTwoSuperBitstreams) {
  // With a budget just over the larger configuration, the optimum packs
  // each configuration's modes together.
  Harness h(one_off_modules());
  const OptimalResult r = optimal_mode_level_partitioning(
      h.design, h.matrix, h.partitions, h.compat, {960, 4, 16});
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.eval.fits);
}

TEST(Optimal, StateCapReportsExhaustion) {
  Harness h(paper_example());
  OptimalOptions opt;
  opt.max_states = 10;
  const OptimalResult r = optimal_mode_level_partitioning(
      h.design, h.matrix, h.partitions, h.compat, {100000, 1000, 1000}, opt);
  EXPECT_TRUE(r.exhausted);
  EXPECT_LE(r.states_explored, 11u);
}

TEST(Optimal, NoStaticPromotionWhenDisabled) {
  Harness h(paper_example());
  OptimalOptions opt;
  opt.allow_static_promotion = false;
  const OptimalResult r = optimal_mode_level_partitioning(
      h.design, h.matrix, h.partitions, h.compat, {100000, 1000, 1000}, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.scheme.static_members.empty());
}

TEST(Optimal, DeterministicAcrossRuns) {
  Harness h(paper_example());
  const ResourceVec budget{900, 8, 16};
  const OptimalResult a = optimal_mode_level_partitioning(
      h.design, h.matrix, h.partitions, h.compat, budget);
  const OptimalResult b = optimal_mode_level_partitioning(
      h.design, h.matrix, h.partitions, h.compat, budget);
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.eval.total_frames, b.eval.total_frames);
  EXPECT_EQ(a.states_explored, b.states_explored);
}

}  // namespace
}  // namespace prpart
