#include "core/schemes.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "synth/ip_library.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using synth::wireless_receiver_budget;
using synth::wireless_receiver_design;
using testing::paper_example;

class CaseStudySchemes : public ::testing::Test {
 protected:
  Design design_ = wireless_receiver_design();
  ConnectivityMatrix matrix_{design_};
  std::vector<BasePartition> partitions_ =
      enumerate_base_partitions(design_, matrix_);
  ResourceVec budget_ = wireless_receiver_budget();
};

TEST_F(CaseStudySchemes, ModularSchemeStructure) {
  const PartitionScheme s = make_modular_scheme(design_, matrix_, partitions_);
  // Five modules -> five regions; R4 ("None") is dead and excluded, so the
  // R region holds three singletons.
  ASSERT_EQ(s.regions.size(), 5u);
  EXPECT_EQ(s.regions[0].members.size(), 2u);  // F
  EXPECT_EQ(s.regions[1].members.size(), 3u);  // R (R4 dead)
  EXPECT_EQ(s.regions[2].members.size(), 2u);  // M
  EXPECT_EQ(s.regions[3].members.size(), 3u);  // D
  EXPECT_EQ(s.regions[4].members.size(), 3u);  // V
}

TEST_F(CaseStudySchemes, ModularEvaluationMatchesHandComputation) {
  const PartitionScheme s = make_modular_scheme(design_, matrix_, partitions_);
  const SchemeEvaluation e =
      evaluate_scheme(design_, matrix_, partitions_, s, budget_);
  ASSERT_TRUE(e.valid);
  // Region frames, from Table II and Eqs. 3-6:
  //   F: 41 CLB tiles + 5 DSP tiles           = 1616
  //   R: 16 CLB + 1 BRAM + 2 DSP              =  662
  //   M:  5 CLB + 1 DSP                       =  208
  //   D: 38 CLB + 4 BRAM + 1 DSP              = 1516
  //   V: 235 CLB + 10 BRAM + 9 DSP            = 9012
  EXPECT_EQ(e.regions[0].frames, 1616u);
  EXPECT_EQ(e.regions[1].frames, 662u);
  EXPECT_EQ(e.regions[2].frames, 208u);
  EXPECT_EQ(e.regions[3].frames, 1516u);
  EXPECT_EQ(e.regions[4].frames, 9012u);
  // Differing pairs per module over the 8 configurations: 16/19/7/13/21.
  EXPECT_EQ(e.regions[0].reconfig_pairs, 16u);
  EXPECT_EQ(e.regions[1].reconfig_pairs, 19u);
  EXPECT_EQ(e.regions[2].reconfig_pairs, 7u);
  EXPECT_EQ(e.regions[3].reconfig_pairs, 13u);
  EXPECT_EQ(e.regions[4].reconfig_pairs, 21u);
  // Total: 248,850 frames under our tile model (paper: 244,872; see
  // EXPERIMENTS.md for the accounting difference).
  EXPECT_EQ(e.total_frames, 248850u);
  // Resources after tile rounding: 6700 CLBs, 60 BRAMs, 144 DSPs. The DSP
  // figure matches the paper's Table IV exactly.
  EXPECT_EQ(e.total_resources, ResourceVec(6700, 60, 144));
}

TEST_F(CaseStudySchemes, StaticSchemeHasZeroTimeAndDoesNotFit) {
  const PartitionScheme s = make_static_scheme(design_, matrix_, partitions_);
  const SchemeEvaluation e =
      evaluate_scheme(design_, matrix_, partitions_, s, budget_);
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(e.total_frames, 0u);
  EXPECT_EQ(e.worst_frames, 0u);
  EXPECT_FALSE(e.fits);  // "exceeds the capacity of the target device"
  // Raw sum of the 13 used modes (R4 is dead): 15751 CLBs.
  EXPECT_EQ(e.total_resources.clbs, 15751u);
}

TEST_F(CaseStudySchemes, SingleRegionEvaluation) {
  const auto [s, e] =
      single_region_scheme(design_, matrix_, partitions_, budget_);
  ASSERT_EQ(s.regions.size(), 1u);
  EXPECT_EQ(s.regions[0].members.size(), 8u);  // one bitstream per config
  // Largest configuration: (6369, 43, 116) raw -> 319/11/15 tiles ->
  // 12,234 frames; every one of the C(8,2)=28 transitions rewrites it.
  EXPECT_EQ(e.regions[0].frames, 12234u);
  EXPECT_EQ(e.total_frames, 28u * 12234u);
  EXPECT_EQ(e.worst_frames, 12234u);
  EXPECT_TRUE(e.fits);
}

TEST_F(CaseStudySchemes, SingleRegionWorstBelowModularWorst) {
  // Fig. 8's observation: the single-region scheme often has the lowest
  // worst-case because its area is minimal. For the case study, modular's
  // worst case (all five regions rewritten) exceeds the single region's.
  const auto [ss, se] =
      single_region_scheme(design_, matrix_, partitions_, budget_);
  const PartitionScheme ms = make_modular_scheme(design_, matrix_, partitions_);
  const SchemeEvaluation me =
      evaluate_scheme(design_, matrix_, partitions_, ms, budget_);
  EXPECT_LT(se.worst_frames, me.worst_frames);
  // ...while its total is far above modular's (Fig. 7's observation).
  EXPECT_GT(se.total_frames, me.total_frames);
}

TEST(PaperExampleSchemes, SingletonLookupFindsAllModes) {
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  const auto parts = enumerate_base_partitions(d, m);
  for (std::size_t mode = 0; mode < d.mode_count(); ++mode) {
    const std::size_t p = singleton_partition(parts, mode);
    EXPECT_TRUE(parts[p].modes.test(mode));
    EXPECT_EQ(parts[p].modes.count(), 1u);
  }
}

TEST(PaperExampleSchemes, SingletonLookupThrowsForDeadMode) {
  const Design d = DesignBuilder("dead")
                       .module("A", {{"A1", {10, 0, 0}}, {"A2", {20, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  const ConnectivityMatrix m(d);
  const auto parts = enumerate_base_partitions(d, m);
  EXPECT_THROW(singleton_partition(parts, 1), InternalError);
}

TEST(PaperExampleSchemes, ModularMatchesGenericEvaluatorEverywhere) {
  // Cross-validation: the modular scheme evaluated through the generic
  // machinery must agree with a direct per-module computation.
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  const auto parts = enumerate_base_partitions(d, m);
  const PartitionScheme s = make_modular_scheme(d, m, parts);
  const SchemeEvaluation e =
      evaluate_scheme(d, m, parts, s, {100000, 1000, 1000});
  ASSERT_TRUE(e.valid);

  std::uint64_t expected_total = 0;
  for (std::size_t mod = 0; mod < d.modules().size(); ++mod) {
    ResourceVec largest;
    for (const Mode& mode : d.modules()[mod].modes)
      largest = elementwise_max(largest, mode.area);
    const std::uint64_t frames = frames_for(largest);
    std::uint64_t diff_pairs = 0;
    const auto& configs = d.configurations();
    for (std::size_t i = 0; i < configs.size(); ++i)
      for (std::size_t j = i + 1; j < configs.size(); ++j) {
        const std::uint32_t a = configs[i].mode_of_module[mod];
        const std::uint32_t b = configs[j].mode_of_module[mod];
        if (a != 0 && b != 0 && a != b) ++diff_pairs;
      }
    expected_total += diff_pairs * frames;
  }
  EXPECT_EQ(e.total_frames, expected_total);
}

}  // namespace
}  // namespace prpart
