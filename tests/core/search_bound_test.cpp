// White-box contract of the branch-and-bound completion lower bound
// (search_internal::completion_lower_bound):
//
//  * admissibility — the bound never exceeds the (weighted) Eq. 10 total of
//    any *fitting* state reachable from the bounded state, checked against
//    randomised move playouts whose totals are themselves cross-checked
//    against the evaluate_scheme oracle;
//  * monotonicity — applying any move never lowers the bound, so a pruned
//    subtree stays pruned (the soundness keystone of the search's pruning);
//  * the undo algebra — apply_move/undo_move restore the search state
//    exactly, which the incremental evaluation relies on.
#include "core/search_internal.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/clustering.hpp"
#include "core/covering.hpp"
#include "core/scheme.hpp"
#include "design/synthetic.hpp"
#include "tests/core/example_designs.hpp"
#include "util/rng.hpp"

namespace prpart {
namespace {

namespace si = search_internal;
using testing::paper_example;

struct Harness {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  CompatibilityTable compat;

  explicit Harness(Design d)
      : design(std::move(d)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix)),
        compat(matrix, partitions) {}

  /// Initial state of the first (complete) candidate partition set.
  si::State initial(const PairWeights* weights = nullptr) const {
    const std::vector<std::size_t> order = covering_order(partitions);
    const CoverResult cov = cover(partitions, matrix, order, 0);
    EXPECT_TRUE(cov.complete);
    return si::initial_state(partitions, compat, weights, cov.selected);
  }

  ResourceVec slack_budget() const {
    const ResourceVec lower =
        design.largest_configuration_area() + design.static_base();
    return {lower.clbs + lower.clbs / 3 + 200, lower.brams + lower.brams / 3 + 8,
            lower.dsps + lower.dsps / 3 + 8};
  }
};

/// Valid moves on `s`: moves_of() minus merges of overlapping occupancies
/// (the search rejects those at evaluation time; applying one would break
/// the disjoint-union invariant of the incremental state).
std::vector<si::Move> valid_moves(const si::State& s, bool allow_promotion) {
  std::vector<si::Move> out;
  for (const si::Move& m : si::moves_of(s, allow_promotion)) {
    if (m.kind == si::Move::Kind::Merge &&
        s.groups[m.a].occ.intersects(s.groups[m.b].occ))
      continue;
    out.push_back(m);
  }
  return out;
}

void apply_random_move(si::State& s, Rng& rng, bool allow_promotion,
                       const PairWeights* weights,
                       std::vector<si::UndoRecord>* undo_log = nullptr) {
  const std::vector<si::Move> moves = valid_moves(s, allow_promotion);
  ASSERT_FALSE(moves.empty());
  const si::Move m = moves[rng.below(moves.size())];
  GroupCost cost;
  if (m.kind == si::Move::Kind::Merge)
    cost = si::merged_group_cost(s.groups[m.a], s.groups[m.b], weights);
  si::UndoRecord undo = si::apply_move(s, m, &cost);
  if (undo_log) undo_log->push_back(std::move(undo));
}

PairWeights random_weights(std::size_t n, Rng& rng) {
  PairWeights w(n, std::vector<std::uint32_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      w[i][j] = w[j][i] = static_cast<std::uint32_t>(rng.uniform(0, 5));
  return w;
}

/// Walks one random move path to the end, checking at every step that
///  * the bound is monotone along the path,
///  * every prefix's bound admits every fitting suffix state,
///  * the incremental ttotal matches the evaluate_scheme oracle.
void check_playout(Harness& h, const ResourceVec& budget, Rng& rng,
                   bool allow_promotion, const PairWeights* weights,
                   std::size_t* fitting_states = nullptr) {
  si::State s = h.initial(weights);
  std::vector<std::uint64_t> bounds;    // lb of every prefix state
  std::vector<std::uint64_t> fitting;   // ttotal of every fitting state
  const auto visit = [&](const si::State& state) {
    const std::uint64_t lb = si::completion_lower_bound(
        state, h.design.static_base(), budget, allow_promotion);
    if (!bounds.empty()) {
      EXPECT_GE(lb, bounds.back()) << "bound decreased along a move path";
    }
    // Admissibility of every earlier prefix against this state, and of this
    // state against itself (a state is its own completion).
    const bool fits = state.total_res(h.design.static_base()).fits_in(budget);
    if (fits) {
      for (std::uint64_t earlier : bounds)
        EXPECT_LE(earlier, state.ttotal) << "bound exceeded a completion";
      EXPECT_NE(lb, si::kNoFittingCompletion)
          << "bound declared a fitting state unreachable";
      EXPECT_LE(lb, state.ttotal);
      fitting.push_back(state.ttotal);
    }
    bounds.push_back(lb);
    // Oracle: the incrementally maintained total is the (weighted) Eq. 10
    // value of the canonical scheme.
    const PartitionScheme scheme = si::canonical_scheme(state);
    const SchemeEvaluation eval =
        evaluate_scheme(h.design, h.matrix, h.partitions, scheme, budget);
    ASSERT_TRUE(eval.valid) << eval.invalid_reason;
    EXPECT_EQ(eval.fits, fits);
    const std::uint64_t expected =
        weights ? weighted_total_frames(eval, *weights) : eval.total_frames;
    EXPECT_EQ(state.ttotal, expected);
  };
  visit(s);
  while (!valid_moves(s, allow_promotion).empty()) {
    apply_random_move(s, rng, allow_promotion, weights);
    visit(s);
  }
  if (fitting_states) *fitting_states += fitting.size();
}

TEST(SearchBound, InitialStateBoundIsZero) {
  Harness h(paper_example());
  const si::State s = h.initial();
  EXPECT_EQ(s.ttotal, 0u);
  EXPECT_EQ(si::completion_lower_bound(s, h.design.static_base(),
                                       h.slack_budget(), true),
            0u);
}

TEST(SearchBound, PromotionDisabledBoundIsTheCurrentTotal) {
  Harness h(paper_example());
  Rng rng(7);
  si::State s = h.initial();
  for (int step = 0; step < 3 && !valid_moves(s, false).empty(); ++step) {
    apply_random_move(s, rng, /*allow_promotion=*/false, nullptr);
    EXPECT_EQ(si::completion_lower_bound(s, h.design.static_base(),
                                         h.slack_budget(), false),
              s.ttotal);
  }
  EXPECT_GT(s.ttotal, 0u);  // the path above must have merged something
}

TEST(SearchBound, OversizedStaticProvesNoFittingCompletion) {
  Harness h(paper_example());
  si::State s = h.initial();
  // Promote one group under a budget far below its area: the static side
  // alone exceeds the budget, so no completion can ever fit.
  GroupCost unused;
  si::UndoRecord undo =
      si::apply_move(s, si::Move{si::Move::Kind::Promote, 0, 0}, &unused);
  const ResourceVec tiny{1, 0, 0};
  EXPECT_EQ(si::completion_lower_bound(s, h.design.static_base(), tiny, true),
            si::kNoFittingCompletion);
  // And it stays absorbed after further moves (monotonicity's edge case).
  Rng rng(3);
  apply_random_move(s, rng, true, nullptr);
  EXPECT_EQ(si::completion_lower_bound(s, h.design.static_base(), tiny, true),
            si::kNoFittingCompletion);
  (void)undo;
}

// Tight budgets exercise the knapsack capacity and the sterile detection;
// the unconstrained budget guarantees fitting states so the admissibility
// leg is never vacuous.
constexpr ResourceVec kUnconstrained{100000, 1000, 1000};

TEST(SearchBound, PaperExampleAdmissibleAndMonotone) {
  Harness h(paper_example());
  std::size_t fitting = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    check_playout(h, {900, 8, 16}, rng, true, nullptr, &fitting);
    check_playout(h, kUnconstrained, rng, true, nullptr, &fitting);
    check_playout(h, h.slack_budget(), rng, /*allow_promotion=*/false,
                  nullptr, &fitting);
  }
  EXPECT_GT(fitting, 0u) << "no playout visited a fitting state";
}

TEST(SearchBound, WeightedPlayoutsAdmissibleAndMonotone) {
  Harness h(paper_example());
  std::size_t fitting = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(100 + seed);
    const PairWeights w = random_weights(h.matrix.configs(), rng);
    check_playout(h, kUnconstrained, rng, true, &w, &fitting);
    check_playout(h, {900, 8, 16}, rng, true, &w, &fitting);
  }
  EXPECT_GT(fitting, 0u) << "no playout visited a fitting state";
}

TEST(SearchBound, SyntheticPlayoutsAdmissibleAndMonotone) {
  std::size_t fitting = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    const auto cls = static_cast<CircuitClass>(seed % 4);
    Harness h(generate_synthetic(rng, cls).design);
    check_playout(h, h.slack_budget(), rng, true, nullptr, &fitting);
    check_playout(h, kUnconstrained, rng, true, nullptr, &fitting);
    Rng wrng(900 + seed);
    const PairWeights w = random_weights(h.matrix.configs(), wrng);
    check_playout(h, h.slack_budget(), wrng, true, &w, &fitting);
  }
  EXPECT_GT(fitting, 0u) << "no playout visited a fitting state";
}

TEST(SearchBound, UndoRestoresTheStateExactly) {
  Harness h(paper_example());
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    si::State s = h.initial();
    const si::State before = s;
    std::vector<si::UndoRecord> undos;
    const std::uint64_t steps = 1 + rng.below(6);
    for (std::uint64_t k = 0; k < steps; ++k) {
      if (valid_moves(s, true).empty()) break;
      apply_random_move(s, rng, true, nullptr, &undos);
    }
    ASSERT_FALSE(undos.empty());
    while (!undos.empty()) {
      si::undo_move(s, undos.back());
      undos.pop_back();
    }
    EXPECT_EQ(s.ttotal, before.ttotal);
    EXPECT_EQ(s.alive, before.alive);
    EXPECT_EQ(s.pr_res, before.pr_res);
    EXPECT_EQ(s.static_extra, before.static_extra);
    EXPECT_EQ(s.static_members, before.static_members);
    ASSERT_EQ(s.groups.size(), before.groups.size());
    for (std::size_t g = 0; g < s.groups.size(); ++g) {
      const si::Group& a = s.groups[g];
      const si::Group& b = before.groups[g];
      EXPECT_EQ(a.alive, b.alive);
      EXPECT_EQ(a.members, b.members);
      EXPECT_EQ(a.raw, b.raw);
      EXPECT_EQ(a.promote_area, b.promote_area);
      EXPECT_EQ(a.frames, b.frames);
      EXPECT_EQ(a.occ_count, b.occ_count);
      EXPECT_EQ(a.tw_union, b.tw_union);
      EXPECT_EQ(a.tw_same, b.tw_same);
      EXPECT_EQ(a.contrib, b.contrib);
    }
    EXPECT_EQ(si::scheme_key(si::canonical_scheme(s)),
              si::scheme_key(si::canonical_scheme(before)));
  }
}

}  // namespace
}  // namespace prpart
