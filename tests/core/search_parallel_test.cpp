// Determinism contract of the parallel region-allocation search: any
// SearchOptions::threads value must return byte-identical schemes (checked
// through the result_io serialisation, the same bytes a tool run archives)
// and identical deterministic-core stats as the threads=1 reference — across
// synthetic seeds, thread counts, evaluation-budget truncation points, and
// the §V case studies (Tables III and V).
#include "core/search.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "core/result_io.hpp"
#include "design/synthetic.hpp"
#include "synth/ip_library.hpp"
#include "tests/core/example_designs.hpp"

namespace prpart {
namespace {

using testing::paper_example;

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

struct Harness {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  CompatibilityTable compat;

  explicit Harness(Design d)
      : design(std::move(d)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix)),
        compat(matrix, partitions) {}

  SearchResult run(const ResourceVec& budget, SearchOptions opt) {
    return search_partitioning(design, matrix, partitions, compat, budget,
                               opt);
  }
};

/// Everything a run promises to keep thread-count-invariant, rendered into
/// one string: the archived XML of the proposed scheme, every ranked
/// alternative (objective + XML), and the deterministic core of the stats.
/// Byte equality of two fingerprints is byte equality of the tool output.
std::string fingerprint(Harness& h, const ResourceVec& budget,
                        const SearchResult& r) {
  std::ostringstream out;
  out << "feasible=" << r.feasible << "\n";
  out << "move_evaluations=" << r.stats.move_evaluations << "\n";
  out << "candidate_sets=" << r.stats.candidate_sets << "\n";
  out << "greedy_runs=" << r.stats.greedy_runs << "\n";
  out << "states_recorded=" << r.stats.states_recorded << "\n";
  out << "budget_exhausted=" << r.stats.budget_exhausted << "\n";
  out << "units=" << r.stats.units << "\n";
  out << "units_pruned=" << r.stats.units_pruned << "\n";
  out << "bound_gap_sum=" << r.stats.bound_gap_sum << "\n";
  out << "bound_lb_sum=" << r.stats.bound_lb_sum << "\n";
  out << "bound_best_sum=" << r.stats.bound_best_sum << "\n";
  out << "kernel_evaluations=" << r.stats.kernel_evaluations << "\n";
  out << "signature_collapsed_configs="
      << r.stats.signature_collapsed_configs << "\n";
  if (!r.feasible) return out.str();
  out << partitioning_to_xml(h.design, h.partitions, r.scheme, r.eval);
  for (const RankedScheme& alt : r.alternatives) {
    const SchemeEvaluation e = evaluate_scheme(h.design, h.matrix,
                                               h.partitions, alt.scheme,
                                               budget);
    out << "alternative=" << alt.total_frames << "\n"
        << partitioning_to_xml(h.design, h.partitions, alt.scheme, e);
  }
  return out.str();
}

void expect_thread_count_invariant(Harness& h, const ResourceVec& budget,
                                   SearchOptions opt) {
  opt.threads = 1;
  const SearchResult reference = h.run(budget, opt);
  const std::string expected = fingerprint(h, budget, reference);
  for (unsigned threads : kThreadCounts) {
    opt.threads = threads;
    const SearchResult r = h.run(budget, opt);
    EXPECT_EQ(fingerprint(h, budget, r), expected)
        << "threads=" << threads << " diverged from threads=1";
  }
}

TEST(SearchParallel, PaperExampleIsByteIdenticalAcrossThreadCounts) {
  Harness h(paper_example());
  SearchOptions opt;
  opt.keep_alternatives = 6;
  expect_thread_count_invariant(h, {900, 8, 16}, opt);
}

TEST(SearchParallel, UnconstrainedBudgetIsByteIdenticalAcrossThreadCounts) {
  Harness h(paper_example());
  expect_thread_count_invariant(h, {100000, 1000, 1000}, SearchOptions{});
}

TEST(SearchParallel, TruncationPointsAreByteIdenticalAcrossThreadCounts) {
  // Evaluation budgets chosen to truncate the search mid-unit, at a unit
  // boundary, and barely at all: the deterministic merge must reconcile the
  // speculative per-unit budgets to the same sequential cut every time.
  Harness h(paper_example());
  for (std::uint64_t evals : {std::uint64_t{50}, std::uint64_t{200},
                              std::uint64_t{1000}, std::uint64_t{5000}}) {
    SearchOptions opt;
    opt.max_move_evaluations = evals;
    expect_thread_count_invariant(h, {900, 8, 16}, opt);
  }
}

TEST(SearchParallel, CacheOffIsByteIdenticalAcrossThreadCounts) {
  Harness h(paper_example());
  SearchOptions opt;
  opt.use_cost_cache = false;
  expect_thread_count_invariant(h, {900, 8, 16}, opt);
}

TEST(SearchParallel, TableIIICaseStudyIsByteIdenticalAcrossThreadCounts) {
  // §V case study (Table III solution shape): the relaxed Table IV budget
  // with the deeper case-study search effort.
  Harness h(synth::wireless_receiver_design());
  SearchOptions opt;
  opt.max_candidate_sets = 64;
  opt.max_move_evaluations = 1'000'000;
  expect_thread_count_invariant(h, {6800, 64, 150}, opt);
}

TEST(SearchParallel, TableVCaseStudyIsByteIdenticalAcrossThreadCounts) {
  // §V modified receiver (Table V): same contract on the second case study.
  Harness h(synth::wireless_receiver_modified_design());
  SearchOptions opt;
  opt.max_candidate_sets = 64;
  opt.max_move_evaluations = 1'000'000;
  expect_thread_count_invariant(h, {6800, 64, 150}, opt);
}

class SearchParallelSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SearchParallelSeeds, SyntheticDesignsAreByteIdentical) {
  Rng rng(GetParam());
  const auto cls = static_cast<CircuitClass>(GetParam() % 4);
  Harness h(generate_synthetic(rng, cls).design);
  const ResourceVec lower =
      h.design.largest_configuration_area() + h.design.static_base();
  const ResourceVec budget{lower.clbs + lower.clbs / 3 + 200,
                           lower.brams + lower.brams / 3 + 8,
                           lower.dsps + lower.dsps / 3 + 8};
  SearchOptions opt;
  opt.max_move_evaluations = 300'000;  // keep the suite fast
  expect_thread_count_invariant(h, budget, opt);
}

INSTANTIATE_TEST_SUITE_P(SyntheticSeeds, SearchParallelSeeds,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(SearchParallel, AutoThreadsMatchesExplicitOne) {
  // threads=0 resolves to default_thread_count(); whatever it resolves to,
  // the result must match the inline reference.
  Harness h(paper_example());
  SearchOptions opt;  // threads = 0 (auto)
  const SearchResult auto_r = h.run({900, 8, 16}, opt);
  opt.threads = 1;
  const SearchResult one_r = h.run({900, 8, 16}, opt);
  EXPECT_EQ(fingerprint(h, {900, 8, 16}, auto_r),
            fingerprint(h, {900, 8, 16}, one_r));
}

TEST(SearchParallel, UnitCountIsReportedAndStable) {
  Harness h(paper_example());
  SearchOptions opt;
  opt.threads = 4;
  const SearchResult r = h.run({900, 8, 16}, opt);
  EXPECT_GT(r.stats.units, 0u);
  // Work units = candidate sets x (1 + restarts): strictly more units than
  // candidate sets whenever any restart exists.
  EXPECT_GE(r.stats.units, r.stats.candidate_sets);
}

}  // namespace
}  // namespace prpart
