#include "core/compatibility.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "tests/core/example_designs.hpp"

namespace prpart {
namespace {

using testing::one_off_modules;
using testing::paper_example;

class CompatibilityPaperExample : public ::testing::Test {
 protected:
  Design design_ = paper_example();
  ConnectivityMatrix matrix_{design_};
  std::vector<BasePartition> partitions_ =
      enumerate_base_partitions(design_, matrix_);
  CompatibilityTable compat_{matrix_, partitions_};

  std::size_t find(const std::string& label) const {
    for (std::size_t i = 0; i < partitions_.size(); ++i)
      if (partitions_[i].label(design_) == label) return i;
    throw std::runtime_error("no partition " + label);
  }
};

TEST_F(CompatibilityPaperExample, PaperExamples) {
  // "{A1} and {A2} are compatible partitions since they do not co-exist in
  // any of the possible configurations, while {A1} and {B1} are not."
  EXPECT_TRUE(compat_.compatible(find("{A1}"), find("{A2}")));
  EXPECT_FALSE(compat_.compatible(find("{A1}"), find("{B1}")));
}

TEST_F(CompatibilityPaperExample, SameModuleModesAreCompatible) {
  EXPECT_TRUE(compat_.compatible(find("{A1}"), find("{A3}")));
  EXPECT_TRUE(compat_.compatible(find("{C1}"), find("{C2}")));
  EXPECT_TRUE(compat_.compatible(find("{C2}"), find("{C3}")));
}

TEST_F(CompatibilityPaperExample, IsSymmetric) {
  for (std::size_t a = 0; a < partitions_.size(); ++a)
    for (std::size_t b = a + 1; b < partitions_.size(); ++b)
      EXPECT_EQ(compat_.compatible(a, b), compat_.compatible(b, a));
}

TEST_F(CompatibilityPaperExample, SelfIsIncompatible) {
  // A partition co-occurs with itself wherever it is active, so it can
  // never share a region with itself (vacuous but guards the definition).
  for (std::size_t a = 0; a < partitions_.size(); ++a)
    EXPECT_FALSE(compat_.compatible(a, a));
}

TEST_F(CompatibilityPaperExample, OccupancyMatchesDefinition) {
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    const DynBitset& occ = compat_.occupancy(p);
    for (std::size_t c = 0; c < matrix_.configs(); ++c)
      EXPECT_EQ(occ.test(c),
                matrix_.row(c).intersects(partitions_[p].modes));
  }
}

TEST_F(CompatibilityPaperExample, CompatibleIffOccupanciesDisjoint) {
  for (std::size_t a = 0; a < partitions_.size(); ++a)
    for (std::size_t b = a + 1; b < partitions_.size(); ++b)
      EXPECT_EQ(compat_.compatible(a, b),
                !compat_.occupancy(a).intersects(compat_.occupancy(b)));
}

TEST_F(CompatibilityPaperExample, SubsetPartitionsAreIncompatible) {
  // {A3,B2} and {A3,B2,C3} overlap in occupancy, so they cannot share a
  // region (the region could not tell which bitstream to load).
  EXPECT_FALSE(compat_.compatible(find("{A3,B2}"), find("{A3,B2,C3}")));
}

TEST(Compatibility, OneOffConfigurationsSplitCleanly) {
  const Design d = one_off_modules();
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m);
  const CompatibilityTable compat(m, partitions);
  // Every partition from configuration 1 is compatible with every partition
  // from configuration 2 (they never co-occur).
  for (std::size_t a = 0; a < partitions.size(); ++a)
    for (std::size_t b = 0; b < partitions.size(); ++b) {
      if (a == b) continue;
      const bool a_in_c0 = partitions[a].modes.is_subset_of(m.row(0));
      const bool b_in_c1 = partitions[b].modes.is_subset_of(m.row(1));
      if (a_in_c0 && b_in_c1) {
        EXPECT_TRUE(compat.compatible(a, b));
      }
    }
}

}  // namespace
}  // namespace prpart
