#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/partitioner.hpp"
#include "core/search.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

struct Harness {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
  CompatibilityTable compat;

  explicit Harness(Design d)
      : design(std::move(d)),
        matrix(design),
        partitions(enumerate_base_partitions(design, matrix)),
        compat(matrix, partitions) {}
};

PairWeights uniform_weights(std::size_t n, std::uint32_t value) {
  PairWeights w(n, std::vector<std::uint32_t>(n, value));
  for (std::size_t i = 0; i < n; ++i) w[i][i] = 0;
  return w;
}

TEST(WeightedSearch, AllOnesMatchesUnweighted) {
  Harness h(paper_example());
  const ResourceVec budget{900, 8, 16};
  const SearchResult plain = search_partitioning(
      h.design, h.matrix, h.partitions, h.compat, budget);
  const PairWeights ones = uniform_weights(h.matrix.configs(), 1);
  SearchOptions opt;
  opt.pair_weights = &ones;
  const SearchResult weighted = search_partitioning(
      h.design, h.matrix, h.partitions, h.compat, budget, opt);
  ASSERT_EQ(plain.feasible, weighted.feasible);
  ASSERT_TRUE(plain.feasible);
  EXPECT_EQ(plain.eval.total_frames, weighted.eval.total_frames);
  EXPECT_EQ(plain.eval.total_resources, weighted.eval.total_resources);
}

TEST(WeightedSearch, UniformScalingDoesNotChangeTheAnswer) {
  Harness h(paper_example());
  const ResourceVec budget{900, 8, 16};
  const PairWeights k7 = uniform_weights(h.matrix.configs(), 7);
  SearchOptions opt;
  opt.pair_weights = &k7;
  const SearchResult weighted = search_partitioning(
      h.design, h.matrix, h.partitions, h.compat, budget, opt);
  const SearchResult plain = search_partitioning(
      h.design, h.matrix, h.partitions, h.compat, budget);
  ASSERT_TRUE(weighted.feasible && plain.feasible);
  EXPECT_EQ(weighted.eval.total_frames, plain.eval.total_frames);
}

TEST(WeightedSearch, WeightedTotalFramesIdentity) {
  Harness h(paper_example());
  const SearchResult r = search_partitioning(
      h.design, h.matrix, h.partitions, h.compat, {900, 8, 16});
  ASSERT_TRUE(r.feasible);
  const PairWeights ones = uniform_weights(h.matrix.configs(), 1);
  EXPECT_EQ(weighted_total_frames(r.eval, ones), r.eval.total_frames);
  const PairWeights threes = uniform_weights(h.matrix.configs(), 3);
  EXPECT_EQ(weighted_total_frames(r.eval, threes), 3 * r.eval.total_frames);
}

TEST(WeightedSearch, RejectsMalformedWeights) {
  Harness h(paper_example());
  PairWeights bad(2, std::vector<std::uint32_t>(2, 1));  // wrong arity
  SearchOptions opt;
  opt.pair_weights = &bad;
  EXPECT_THROW(search_partitioning(h.design, h.matrix, h.partitions, h.compat,
                                   {900, 8, 16}, opt),
               InternalError);
}

TEST(WeightedSearch, SkewedWeightsShiftTheOptimum) {
  // Make one configuration pair overwhelmingly likely: a weighted search
  // should produce a scheme at least as good for that objective as the
  // uniform search's scheme.
  Harness h(paper_example());
  const std::size_t n = h.matrix.configs();
  PairWeights skewed = uniform_weights(n, 1);
  skewed[0][4] = skewed[4][0] = 10000;  // Conf1 <-> Conf5 dominates

  const ResourceVec budget{900, 8, 16};
  SearchOptions opt;
  opt.pair_weights = &skewed;
  const SearchResult rw = search_partitioning(
      h.design, h.matrix, h.partitions, h.compat, budget, opt);
  const SearchResult ru = search_partitioning(
      h.design, h.matrix, h.partitions, h.compat, budget);
  ASSERT_TRUE(rw.feasible && ru.feasible);
  EXPECT_LE(weighted_total_frames(rw.eval, skewed),
            weighted_total_frames(ru.eval, skewed));
}

TEST(WeightedSearch, PartitionerComparesFallbackUnderWeights) {
  // The fallback decision must use the weighted objective so a weighted
  // search result is never rejected against an unweighted single-region
  // number.
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  PairWeights w = uniform_weights(m.configs(), 2);
  PartitionerOptions opt;
  opt.search.pair_weights = &w;
  const PartitionerResult r = partition_design(d, {900, 8, 16}, opt);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(weighted_total_frames(r.proposed.eval, w),
            weighted_total_frames(r.single_region.eval, w));
}

}  // namespace
}  // namespace prpart
