#include "core/covering.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "tests/core/example_designs.hpp"

namespace prpart {
namespace {

using testing::paper_example;

class CoveringPaperExample : public ::testing::Test {
 protected:
  Design design_ = paper_example();
  ConnectivityMatrix matrix_{design_};
  std::vector<BasePartition> partitions_ =
      enumerate_base_partitions(design_, matrix_);
  std::vector<std::size_t> order_ = covering_order(partitions_);
};

TEST_F(CoveringPaperExample, OrderIsAscendingBySizeThenFrequencyThenArea) {
  for (std::size_t i = 1; i < order_.size(); ++i) {
    const BasePartition& a = partitions_[order_[i - 1]];
    const BasePartition& b = partitions_[order_[i]];
    const auto ka = std::tuple(a.modes.count(), a.frequency_weight, a.frames);
    const auto kb = std::tuple(b.modes.count(), b.frequency_weight, b.frames);
    EXPECT_LE(ka, kb);
  }
}

TEST_F(CoveringPaperExample, FirstCandidateSetIsAllSingletons) {
  // "A closer examination shows that these are actually all the modes
  // present in the design."
  const CoverResult r = cover(partitions_, matrix_, order_, 0);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.selected.size(), 8u);
  for (std::size_t p : r.selected)
    EXPECT_EQ(partitions_[p].modes.count(), 1u);
}

TEST_F(CoveringPaperExample, SelectionSkipsRedundantPartitions) {
  const CoverResult r = cover(partitions_, matrix_, order_, 0);
  // Selected partitions are mutually disjoint when all are singletons.
  DynBitset seen(matrix_.modes());
  for (std::size_t p : r.selected) {
    EXPECT_FALSE(seen.intersects(partitions_[p].modes));
    seen |= partitions_[p].modes;
  }
  // All modes covered.
  EXPECT_EQ(seen.count(), 8u);
}

TEST_F(CoveringPaperExample, SkipOneReplacesHeadWithPair) {
  // After removing the head (a frequency-weight-1 singleton), the covering
  // must fall back to a pair containing the removed mode.
  const CoverResult r0 = cover(partitions_, matrix_, order_, 0);
  const std::size_t removed = order_[0];
  ASSERT_EQ(partitions_[removed].modes.count(), 1u);
  const std::size_t removed_mode = partitions_[removed].modes.bits().front();

  const CoverResult r1 = cover(partitions_, matrix_, order_, 1);
  EXPECT_TRUE(r1.complete);
  bool covered_by_larger = false;
  for (std::size_t p : r1.selected) {
    EXPECT_NE(p, removed);
    if (partitions_[p].modes.test(removed_mode) &&
        partitions_[p].modes.count() > 1)
      covered_by_larger = true;
  }
  EXPECT_TRUE(covered_by_larger);
  EXPECT_NE(r0.selected, r1.selected);
}

TEST_F(CoveringPaperExample, EverySkipUntilFailureCoversEverything) {
  std::size_t skip = 0;
  for (; skip < order_.size(); ++skip) {
    const CoverResult r = cover(partitions_, matrix_, order_, skip);
    if (!r.complete) break;
    DynBitset seen(matrix_.modes());
    for (std::size_t p : r.selected) seen |= partitions_[p].modes;
    for (std::size_t mode = 0; mode < matrix_.modes(); ++mode)
      if (matrix_.node_weight(mode) > 0) {
        EXPECT_TRUE(seen.test(mode));
      }
  }
  // Covering must eventually fail (once everything is skipped) and must
  // succeed for at least the first several skips.
  EXPECT_GT(skip, 3u);
  EXPECT_LT(skip, order_.size());
}

TEST_F(CoveringPaperExample, CandidateSetsAreDistinctAcrossSkips) {
  std::vector<std::vector<std::size_t>> sets;
  for (std::size_t skip = 0; skip < 6; ++skip) {
    const CoverResult r = cover(partitions_, matrix_, order_, skip);
    if (!r.complete) break;
    for (const auto& prev : sets) EXPECT_NE(prev, r.selected);
    sets.push_back(r.selected);
  }
  EXPECT_GE(sets.size(), 4u);
}

TEST_F(CoveringPaperExample, SkipBeyondEndIsIncomplete) {
  const CoverResult r = cover(partitions_, matrix_, order_, order_.size());
  EXPECT_FALSE(r.complete);
  EXPECT_TRUE(r.selected.empty());
}

// Regression for the enumeration-order contract: covering_order must be a
// full lexicographic total order with the master-list index as the final
// tie-break, so the order (and every candidate set derived from it) is one
// well-defined permutation regardless of the sort algorithm's stability.
// Parallel search chunks work by position in this order, so any
// tie-dependent wobble here would silently change which unit runs what.
TEST(CoveringOrderStability, TiesBreakByIndexAscending) {
  // Eight partitions sharing one (count, weight, frames) key plus decoys on
  // either side, deliberately constructed in scrambled index order.
  std::vector<BasePartition> partitions(8);
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    partitions[i].modes = DynBitset(8);
    partitions[i].modes.set(i);
    partitions[i].frequency_weight = 5;
    partitions[i].frames = 1000;
  }
  partitions[2].frequency_weight = 1;  // sorts first
  partitions[6].frames = 2000;         // sorts last among weight-5
  partitions[6].frequency_weight = 5;

  const std::vector<std::size_t> order = covering_order(partitions);
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order.front(), 2u);
  EXPECT_EQ(order.back(), 6u);
  // The fully tied middle block must come out in ascending index order.
  const std::vector<std::size_t> middle(order.begin() + 1, order.end() - 1);
  EXPECT_EQ(middle, (std::vector<std::size_t>{0, 1, 3, 4, 5, 7}));
}

TEST(CoveringOrderStability, OrderIsAPermutationAndIdempotent) {
  // Same key everywhere: the index tie-break alone must yield the identity
  // permutation, and re-running the sort must not change it.
  std::vector<BasePartition> partitions(16);
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    partitions[i].modes = DynBitset(16);
    partitions[i].modes.set(i);
    partitions[i].frequency_weight = 3;
    partitions[i].frames = 700;
  }
  const std::vector<std::size_t> first = covering_order(partitions);
  std::vector<std::size_t> identity(partitions.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  EXPECT_EQ(first, identity);
  EXPECT_EQ(covering_order(partitions), first);
}

}  // namespace
}  // namespace prpart
