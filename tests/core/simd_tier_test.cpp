// Tier×batch identity matrix of the evaluation kernel (DESIGN.md §4e): for
// every SIMD tier the host can run, single and batched evaluation must be
// byte-identical to evaluate_scheme_reference — every SchemeEvaluation
// field, the invalid_reason strings and truncation points, and the
// deterministic EvalStats counters. Tiers the host cannot run are skipped
// with a logged reason, never silently.

#include <gtest/gtest.h>

#include <iostream>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "core/covering.hpp"
#include "core/eval_kernel.hpp"
#include "core/scheme.hpp"
#include "core/schemes.hpp"
#include "design/synthetic.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

const simd::Tier kAllTiers[] = {simd::Tier::kScalar, simd::Tier::kNeon,
                                simd::Tier::kAvx2, simd::Tier::kAvx512};

// Tiers this host can execute; the rest are reported once per test so a CI
// log always shows which legs of the matrix ran.
std::vector<simd::Tier> runnable_tiers(const char* test_name) {
  std::vector<simd::Tier> tiers;
  for (const simd::Tier tier : kAllTiers) {
    if (simd::tier_supported(tier)) {
      tiers.push_back(tier);
    } else {
      std::cout << "[ SKIPPED  ] " << test_name << ": tier '"
                << simd::tier_name(tier)
                << "' is not supported on this host (supported: "
                << simd::supported_tier_list() << ")\n";
    }
  }
  return tiers;
}

void expect_identical(const SchemeEvaluation& ref, const SchemeEvaluation& ker,
                      const std::string& what) {
  ASSERT_EQ(ref.valid, ker.valid) << what;
  EXPECT_EQ(ref.invalid_reason, ker.invalid_reason) << what;
  EXPECT_EQ(ref.fits, ker.fits) << what;
  EXPECT_EQ(ref.pr_resources, ker.pr_resources) << what;
  EXPECT_EQ(ref.static_resources, ker.static_resources) << what;
  EXPECT_EQ(ref.total_resources, ker.total_resources) << what;
  EXPECT_EQ(ref.total_frames, ker.total_frames) << what;
  EXPECT_EQ(ref.worst_frames, ker.worst_frames) << what;
  ASSERT_EQ(ref.regions.size(), ker.regions.size()) << what;
  for (std::size_t r = 0; r < ref.regions.size(); ++r) {
    EXPECT_EQ(ref.regions[r].raw, ker.regions[r].raw) << what << " r" << r;
    EXPECT_EQ(ref.regions[r].tiles, ker.regions[r].tiles) << what << " r" << r;
    EXPECT_EQ(ref.regions[r].frames, ker.regions[r].frames)
        << what << " r" << r;
    EXPECT_EQ(ref.regions[r].reconfig_pairs, ker.regions[r].reconfig_pairs)
        << what << " r" << r;
    EXPECT_EQ(ref.regions[r].active, ker.regions[r].active)
        << what << " r" << r;
  }
}

struct DesignUnderTest {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
};

DesignUnderTest make_dut(Design design) {
  ConnectivityMatrix matrix(design);
  std::vector<BasePartition> partitions =
      enumerate_base_partitions(design, matrix);
  return {std::move(design), std::move(matrix), std::move(partitions)};
}

// Random region grouping over a complete cover (the population the search
// explores): a mix of valid, double-activating and uncovered schemes.
PartitionScheme random_scheme(const DesignUnderTest& dut, Rng& rng) {
  const auto order = covering_order(dut.partitions);
  const CoverResult cover_result =
      cover(dut.partitions, dut.matrix, order, /*skip=*/0);
  PartitionScheme scheme;
  if (cover_result.selected.empty()) return scheme;
  const std::size_t nregions =
      1 + static_cast<std::size_t>(rng.below(cover_result.selected.size()));
  scheme.regions.resize(nregions);
  for (std::size_t p : cover_result.selected) {
    if (rng.chance(0.1)) {
      scheme.static_members.push_back(p);
    } else {
      scheme.regions[rng.below(nregions)].members.push_back(p);
    }
  }
  std::erase_if(scheme.regions,
                [](const Region& r) { return r.members.empty(); });
  if (scheme.regions.empty() && !cover_result.selected.empty())
    scheme.regions.push_back(Region{{cover_result.selected.front()}});
  // Occasionally drop a region: uncovered-mode diagnostics must also match
  // across tiers, not just the valid path.
  if (scheme.regions.size() > 1 && rng.chance(0.25))
    scheme.regions.pop_back();
  return scheme;
}

TEST(SimdTierMatrix, EveryTierMatchesReferenceSingleAndBatched) {
  const auto suite = generate_synthetic_suite(/*seed=*/20260808, /*count=*/12);
  const ResourceVec budget{30720, 456, 384};
  for (const simd::Tier tier : runnable_tiers("SimdTierMatrix")) {
    const simd::ScopedForcedTier forced(tier);
    ASSERT_EQ(simd::active_tier(), tier);
    Rng rng(11);
    for (const SyntheticDesign& s : suite) {
      const DesignUnderTest dut = make_dut(s.design);
      const EvalContext context(dut.design, dut.matrix, dut.partitions);
      EvalScratch scratch;

      std::vector<PartitionScheme> schemes;
      for (int k = 0; k < 8; ++k) {
        PartitionScheme scheme = random_scheme(dut, rng);
        if (!scheme.regions.empty()) schemes.push_back(std::move(scheme));
      }
      if (schemes.empty()) continue;
      const std::string label =
          std::string(simd::tier_name(tier)) + " " + dut.design.name();

      // Single evaluations match the reference.
      std::vector<SchemeEvaluation> singles(schemes.size());
      for (std::size_t i = 0; i < schemes.size(); ++i) {
        context.evaluate_into(schemes[i], budget, scratch, singles[i]);
        const SchemeEvaluation ref = evaluate_scheme_reference(
            dut.design, dut.matrix, dut.partitions, schemes[i], budget);
        expect_identical(ref, singles[i], label + " #" + std::to_string(i));
      }
      const EvalStats after_singles = scratch.stats;

      // The batch entry point reproduces the singles — results and counter
      // increments.
      std::vector<const PartitionScheme*> ptrs;
      for (const PartitionScheme& scheme : schemes)
        ptrs.push_back(&scheme);
      std::vector<SchemeEvaluation> batched;
      context.evaluate_batch_into(ptrs, budget, scratch, batched);
      ASSERT_EQ(batched.size(), singles.size());
      for (std::size_t i = 0; i < singles.size(); ++i)
        expect_identical(singles[i], batched[i],
                         label + " batch #" + std::to_string(i));
      // The batch added exactly one kernel evaluation per scheme and
      // collapsed exactly what the singles collapsed.
      EXPECT_EQ(scratch.stats.kernel_evaluations,
                after_singles.kernel_evaluations + schemes.size())
          << label;
      EXPECT_EQ(scratch.stats.signature_collapsed_configs,
                2 * after_singles.signature_collapsed_configs)
          << label;
    }
  }
}

TEST(SimdTierMatrix, WideConfigurationRowsMatchReferenceOnEveryTier) {
  // Deeply adaptive designs (hundreds of configurations) make the packed
  // activity rows span many 64-bit words, driving the tiers' full-width
  // vector loops (8 words per AVX-512 op) and the lane-mask tails at once.
  // The coverage-minimum designs of the other tests never leave word one.
  SyntheticOptions wide;
  wide.min_modules = 8;
  wide.max_modules = 10;
  wide.min_modes = 3;
  wide.max_modes = 4;
  wide.max_clbs = 400;
  wide.min_configurations = 540;  // 9 words of configuration bits
  const auto suite = generate_synthetic_suite(/*seed=*/909, /*count=*/1, wide);
  const ResourceVec budget{30720, 456, 384};
  Rng rng(5);
  const SyntheticDesign& s = suite.front();
  // Cap clique enumeration at pairs (the partitioner's max_partition_modes
  // guard): unbounded subsets over a 540-configuration co-occurrence
  // matrix would swamp the test with setup, not kernel work.
  DesignUnderTest dut{s.design, ConnectivityMatrix(s.design), {}};
  dut.partitions = enumerate_base_partitions(dut.design, dut.matrix, 2);
  ASSERT_GE(dut.matrix.configs(), 512u) << s.design.name();
  const EvalContext context(dut.design, dut.matrix, dut.partitions);
  std::vector<PartitionScheme> schemes;
  for (int k = 0; k < 3; ++k) {
    PartitionScheme scheme = random_scheme(dut, rng);
    if (!scheme.regions.empty()) schemes.push_back(std::move(scheme));
  }
  ASSERT_FALSE(schemes.empty());
  std::vector<SchemeEvaluation> refs(schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i)
    refs[i] = evaluate_scheme_reference(dut.design, dut.matrix, dut.partitions,
                                        schemes[i], budget);
  for (const simd::Tier tier : runnable_tiers("SimdTierMatrix.Wide")) {
    const simd::ScopedForcedTier forced(tier);
    EvalScratch scratch;
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      SchemeEvaluation eval;
      context.evaluate_into(schemes[i], budget, scratch, eval);
      expect_identical(refs[i], eval,
                       std::string(simd::tier_name(tier)) + " wide #" +
                           std::to_string(i));
    }
  }
}

TEST(SimdTierMatrix, DeterministicCountersAgreeAcrossTiers) {
  // The EvalStats counters are part of the identity contract: every tier
  // must report the same kernel_evaluations and the same
  // signature_collapsed_configs for the same scheme sequence.
  const auto suite = generate_synthetic_suite(/*seed=*/515, /*count=*/8);
  const ResourceVec budget{30720, 456, 384};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> per_tier;
  const std::vector<simd::Tier> tiers =
      runnable_tiers("SimdTierMatrix.Counters");
  for (const simd::Tier tier : tiers) {
    const simd::ScopedForcedTier forced(tier);
    EvalStats totals;
    Rng rng(3);
    for (const SyntheticDesign& s : suite) {
      const DesignUnderTest dut = make_dut(s.design);
      const EvalContext context(dut.design, dut.matrix, dut.partitions);
      EvalScratch scratch;
      for (int k = 0; k < 6; ++k) {
        const PartitionScheme scheme = random_scheme(dut, rng);
        if (scheme.regions.empty()) continue;
        SchemeEvaluation eval;
        context.evaluate_into(scheme, budget, scratch, eval);
      }
      totals.kernel_evaluations += scratch.stats.kernel_evaluations;
      totals.signature_collapsed_configs +=
          scratch.stats.signature_collapsed_configs;
    }
    per_tier.emplace_back(totals.kernel_evaluations,
                          totals.signature_collapsed_configs);
  }
  ASSERT_FALSE(per_tier.empty());
  for (std::size_t t = 1; t < per_tier.size(); ++t) {
    EXPECT_EQ(per_tier[t].first, per_tier[0].first)
        << simd::tier_name(tiers[t]);
    EXPECT_EQ(per_tier[t].second, per_tier[0].second)
        << simd::tier_name(tiers[t]);
  }
  EXPECT_GT(per_tier[0].first, 0u);
}

TEST(SimdTierMatrix, ForcingAnUnsupportedTierThrowsLoudly) {
  // PRPART_SIMD must never degrade silently: naming a tier the host cannot
  // run (or an unknown name) is an error with the supported list attached.
  EXPECT_THROW(simd::tier_from_name("no-such-tier"), Error);
  for (const simd::Tier tier : kAllTiers) {
    if (simd::tier_supported(tier)) continue;
    EXPECT_THROW(simd::tier_from_name(simd::tier_name(tier)), Error)
        << simd::tier_name(tier);
  }
}

TEST(SimdTierMatrix, BaselinePairBatchMatchesPerSchemeCalls) {
  // The partitioner scores its modular+static baselines as a batch of two;
  // pin that shape explicitly on every tier.
  const auto suite = generate_synthetic_suite(/*seed=*/77, /*count=*/6);
  const ResourceVec budget{10000, 100, 100};
  for (const simd::Tier tier : runnable_tiers("SimdTierMatrix.Baselines")) {
    const simd::ScopedForcedTier forced(tier);
    for (const SyntheticDesign& s : suite) {
      const DesignUnderTest dut = make_dut(s.design);
      const EvalContext context(dut.design, dut.matrix, dut.partitions);
      EvalScratch scratch;
      const PartitionScheme modular =
          make_modular_scheme(dut.design, dut.matrix, dut.partitions);
      const PartitionScheme statics =
          make_static_scheme(dut.design, dut.matrix, dut.partitions);
      const PartitionScheme* pair[2] = {&modular, &statics};
      SchemeEvaluation batched[2];
      context.evaluate_batch_into(pair, 2, budget, scratch, batched);
      expect_identical(context.evaluate(modular, budget, scratch), batched[0],
                       std::string(simd::tier_name(tier)) + " modular");
      expect_identical(context.evaluate(statics, budget, scratch), batched[1],
                       std::string(simd::tier_name(tier)) + " static");
    }
  }
}

}  // namespace
}  // namespace prpart
