#include "core/scheme.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/clustering.hpp"
#include "core/schemes.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::fig3_example;
using testing::paper_example;

class SchemeEval : public ::testing::Test {
 protected:
  Design design_ = paper_example();
  ConnectivityMatrix matrix_{design_};
  std::vector<BasePartition> partitions_ =
      enumerate_base_partitions(design_, matrix_);
  ResourceVec big_budget_{100000, 1000, 1000};

  std::size_t find(const std::string& label) const {
    for (std::size_t i = 0; i < partitions_.size(); ++i)
      if (partitions_[i].label(design_) == label) return i;
    throw std::runtime_error("no partition " + label);
  }
};

TEST_F(SchemeEval, SingletonRegionsHaveZeroReconfigTime) {
  // One region per mode == static-equivalent allocation: §IV-C says this
  // "requires minimum reconfiguration time".
  PartitionScheme scheme;
  for (const char* label : {"{A1}", "{A2}", "{A3}", "{B1}", "{B2}", "{C1}",
                            "{C2}", "{C3}"})
    scheme.regions.push_back(Region{{find(label)}});
  const SchemeEvaluation e =
      evaluate_scheme(design_, matrix_, partitions_, scheme, big_budget_);
  EXPECT_TRUE(e.valid);
  EXPECT_EQ(e.total_frames, 0u);
  EXPECT_EQ(e.worst_frames, 0u);
}

TEST_F(SchemeEval, RegionAreaIsTileRoundedMax) {
  PartitionScheme scheme;
  scheme.regions.push_back(Region{{find("{A1}"), find("{A2}")}});
  // Remaining modes in their own regions to keep the scheme valid.
  for (const char* label : {"{A3}", "{B1}", "{B2}", "{C1}", "{C2}", "{C3}"})
    scheme.regions.push_back(Region{{find(label)}});
  const SchemeEvaluation e =
      evaluate_scheme(design_, matrix_, partitions_, scheme, big_budget_);
  ASSERT_TRUE(e.valid);
  // A1={100,0,0}, A2={260,1,2}: max={260,1,2} -> 13 CLB tiles, 1 BRAM tile,
  // 1 DSP tile.
  EXPECT_EQ(e.regions[0].raw, ResourceVec(260, 1, 2));
  EXPECT_EQ(e.regions[0].tiles, (TileCount{13, 1, 1}));
  EXPECT_EQ(e.regions[0].frames, 13u * 36 + 1u * 30 + 1u * 28);
}

TEST_F(SchemeEval, MergedRegionPaysReconfigurationPairs) {
  PartitionScheme scheme;
  scheme.regions.push_back(Region{{find("{A1}"), find("{A2}"), find("{A3}")}});
  for (const char* label : {"{B1}", "{B2}", "{C1}", "{C2}", "{C3}"})
    scheme.regions.push_back(Region{{find(label)}});
  const SchemeEvaluation e =
      evaluate_scheme(design_, matrix_, partitions_, scheme, big_budget_);
  ASSERT_TRUE(e.valid);
  // A modes: A3 in confs {1,3}, A1 in {2,4}, A2 in {5} -- differing pairs:
  // C(5,2) - C(2,2) - C(2,2) - C(1,2) = 10 - 1 - 1 - 0 = 8.
  EXPECT_EQ(e.regions[0].reconfig_pairs, 8u);
  EXPECT_EQ(e.total_frames, 8u * e.regions[0].frames);
  EXPECT_EQ(e.worst_frames, e.regions[0].frames);
}

TEST_F(SchemeEval, StaticMembersCostAreaButNoTime) {
  PartitionScheme scheme;
  scheme.static_members = {find("{B2}")};
  for (const char* label : {"{A1}", "{A2}", "{A3}", "{B1}", "{C1}", "{C2}",
                            "{C3}"})
    scheme.regions.push_back(Region{{find(label)}});
  const SchemeEvaluation e =
      evaluate_scheme(design_, matrix_, partitions_, scheme, big_budget_);
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(e.total_frames, 0u);
  // Static resources: design static base (0) + raw B2 area.
  EXPECT_EQ(e.static_resources, ResourceVec(90, 0, 1));
}

TEST_F(SchemeEval, IncompatibleMembersInvalidateScheme) {
  PartitionScheme scheme;
  // A1 and B1 co-occur in Conf.2: same region is invalid.
  scheme.regions.push_back(Region{{find("{A1}"), find("{B1}")}});
  for (const char* label : {"{A2}", "{A3}", "{B2}", "{C1}", "{C2}", "{C3}"})
    scheme.regions.push_back(Region{{find(label)}});
  const SchemeEvaluation e =
      evaluate_scheme(design_, matrix_, partitions_, scheme, big_budget_);
  EXPECT_FALSE(e.valid);
  EXPECT_NE(e.invalid_reason.find("two partitions"), std::string::npos);
}

TEST_F(SchemeEval, MissingModeInvalidatesScheme) {
  PartitionScheme scheme;
  for (const char* label : {"{A1}", "{A2}", "{A3}", "{B1}", "{B2}", "{C1}",
                            "{C2}"})  // C3 missing
    scheme.regions.push_back(Region{{find(label)}});
  const SchemeEvaluation e =
      evaluate_scheme(design_, matrix_, partitions_, scheme, big_budget_);
  EXPECT_FALSE(e.valid);
  EXPECT_NE(e.invalid_reason.find("not provided"), std::string::npos);
}

TEST_F(SchemeEval, FitRespectsBudget) {
  PartitionScheme scheme;
  for (const char* label : {"{A1}", "{A2}", "{A3}", "{B1}", "{B2}", "{C1}",
                            "{C2}", "{C3}"})
    scheme.regions.push_back(Region{{find(label)}});
  const SchemeEvaluation big =
      evaluate_scheme(design_, matrix_, partitions_, scheme, big_budget_);
  EXPECT_TRUE(big.fits);
  const SchemeEvaluation tiny =
      evaluate_scheme(design_, matrix_, partitions_, scheme, {100, 1, 1});
  EXPECT_FALSE(tiny.fits);
  // Resource accounting is budget-independent.
  EXPECT_EQ(big.total_resources, tiny.total_resources);
}

TEST_F(SchemeEval, Fig3HybridBeatsFig3Modular) {
  // §IV-A's hybrid: {A2,B1} in one region, A1 and B2 static. Total
  // reconfiguration time must be strictly below the two-region modular
  // arrangement.
  const Design d = fig3_example();
  const ConnectivityMatrix m(d);
  const auto parts = enumerate_base_partitions(d, m);
  auto find_in = [&](const std::string& label) {
    for (std::size_t i = 0; i < parts.size(); ++i)
      if (parts[i].label(d) == label) return i;
    throw std::runtime_error("missing " + label);
  };

  PartitionScheme hybrid;
  hybrid.regions.push_back(Region{{find_in("{A2}"), find_in("{B1}")}});
  hybrid.static_members = {find_in("{A1}"), find_in("{B2}")};
  const SchemeEvaluation he =
      evaluate_scheme(d, m, parts, hybrid, {100000, 100, 100});
  ASSERT_TRUE(he.valid) << he.invalid_reason;

  const PartitionScheme modular = make_modular_scheme(d, m, parts);
  const SchemeEvaluation me =
      evaluate_scheme(d, m, parts, modular, {100000, 100, 100});
  ASSERT_TRUE(me.valid);

  EXPECT_LT(he.total_frames, me.total_frames);
  // And the hybrid's resource bill is far below fully static (A1+A2+B1+B2).
  EXPECT_LT(he.total_resources.clbs, d.full_static_area().clbs);
}

TEST_F(SchemeEval, EmptyRegionThrows) {
  PartitionScheme scheme;
  scheme.regions.push_back(Region{});
  EXPECT_THROW(
      evaluate_scheme(design_, matrix_, partitions_, scheme, big_budget_),
      InternalError);
}

}  // namespace
}  // namespace prpart
