#include "core/cost_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/clustering.hpp"
#include "core/search.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

GroupCost cost_of(std::uint32_t clbs, std::uint64_t tw) {
  GroupCost c;
  c.raw = ResourceVec{clbs, 0, 0};
  c.tiles = tiles_for(c.raw);
  c.frames = c.tiles.frames();
  c.tw_union = tw;
  return c;
}

TEST(GroupCostCache, MissThenHitAccounting) {
  GroupCostCache cache;
  const GroupCostCache::Key key{1, 4, 7};
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.store(key, cost_of(120, 3));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->raw.clbs, 120u);
  EXPECT_EQ(hit->tw_union, 3u);

  const GroupCostCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(GroupCostCache, DistinctKeysDoNotAlias) {
  GroupCostCache cache;
  cache.store({0, 1}, cost_of(100, 1));
  cache.store({0, 2}, cost_of(200, 2));
  EXPECT_EQ(cache.lookup({0, 1})->raw.clbs, 100u);
  EXPECT_EQ(cache.lookup({0, 2})->raw.clbs, 200u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(GroupCostCache, CollisionSafeUnderDegenerateHash) {
  // Constant hash: every key lands in the same shard and the same bucket
  // chain. Distinct member sets must still resolve to their own entries —
  // the hash may only steer, never identify.
  const GroupCostCache::HashFn constant = [](const GroupCostCache::Key&) {
    return std::size_t{42};
  };
  GroupCostCache cache(4, constant);
  cache.store({3, 5, 9}, cost_of(111, 7));
  cache.store({2, 6}, cost_of(222, 8));
  cache.store({}, cost_of(333, 9));

  EXPECT_EQ(cache.lookup({3, 5, 9})->raw.clbs, 111u);
  EXPECT_EQ(cache.lookup({2, 6})->raw.clbs, 222u);
  EXPECT_EQ(cache.lookup(GroupCostCache::Key{})->raw.clbs, 333u);
  EXPECT_EQ(cache.size(), 3u);
  // A fourth, unseen key with the same (constant) hash is still a miss.
  EXPECT_FALSE(cache.lookup({3, 5}).has_value());
}

TEST(GroupCostCache, PrefixAndSuffixKeysAreDistinct) {
  // FNV over a shared prefix: {1} vs {1, 0} vs {0, 1} must all differ.
  GroupCostCache cache;
  cache.store({1}, cost_of(10, 0));
  cache.store({1, 0}, cost_of(20, 0));
  cache.store({0, 1}, cost_of(30, 0));
  EXPECT_EQ(cache.lookup({1})->raw.clbs, 10u);
  EXPECT_EQ(cache.lookup({1, 0})->raw.clbs, 20u);
  EXPECT_EQ(cache.lookup({0, 1})->raw.clbs, 30u);
}

TEST(GroupCostCache, DuplicateStoreKeepsOneEntry) {
  GroupCostCache cache;
  cache.store({4, 8}, cost_of(50, 5));
  cache.store({4, 8}, cost_of(50, 5));  // racy double-compute is benign
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup({4, 8})->raw.clbs, 50u);
}

TEST(GroupCostCache, ZeroShardsIsRejected) {
  EXPECT_THROW(GroupCostCache(0), Error);
}

TEST(GroupCostCache, ConcurrentMixedAccessIsConsistent) {
  GroupCostCache cache;
  constexpr std::size_t kKeys = 64;
  auto worker = [&](std::size_t offset) {
    for (std::size_t round = 0; round < 50; ++round)
      for (std::size_t k = 0; k < kKeys; ++k) {
        const GroupCostCache::Key key{(k + offset) % kKeys, 1000};
        if (const auto hit = cache.lookup(key)) {
          EXPECT_EQ(hit->tw_union, (k + offset) % kKeys);
        } else {
          cache.store(key, cost_of(1, (k + offset) % kKeys));
        }
      }
  };
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < 4; ++t) pool.emplace_back(worker, t * 7);
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(cache.size(), kKeys);
  const GroupCostCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 4u * 50u * kKeys);
}

TEST(GroupCostCache, SearchResultsIdenticalWithCacheOff) {
  // The cache is a pure memo: disabling it must not change any search
  // output, only the cache counters.
  Design design = paper_example();
  ConnectivityMatrix matrix(design);
  const std::vector<BasePartition> partitions =
      enumerate_base_partitions(design, matrix);
  const CompatibilityTable compat(matrix, partitions);
  const ResourceVec budget{900, 8, 16};

  SearchOptions on;
  on.threads = 4;
  SearchOptions off = on;
  off.use_cost_cache = false;

  const SearchResult ron =
      search_partitioning(design, matrix, partitions, compat, budget, on);
  const SearchResult roff =
      search_partitioning(design, matrix, partitions, compat, budget, off);

  ASSERT_EQ(ron.feasible, roff.feasible);
  EXPECT_EQ(ron.eval.total_frames, roff.eval.total_frames);
  EXPECT_EQ(ron.eval.total_resources, roff.eval.total_resources);
  EXPECT_EQ(ron.stats.move_evaluations, roff.stats.move_evaluations);
  EXPECT_EQ(ron.stats.states_recorded, roff.stats.states_recorded);
  EXPECT_EQ(ron.alternatives.size(), roff.alternatives.size());

  // With the cache on, a multi-unit search shares work: counters move.
  EXPECT_GT(ron.stats.cache_hits + ron.stats.cache_misses, 0u);
  EXPECT_EQ(ron.stats.cache_entries,
            ron.stats.cache_misses == 0 ? 0u : ron.stats.cache_entries);
  // With the cache off, the counters stay zero.
  EXPECT_EQ(roff.stats.cache_hits, 0u);
  EXPECT_EQ(roff.stats.cache_misses, 0u);
  EXPECT_EQ(roff.stats.cache_entries, 0u);
}

}  // namespace
}  // namespace prpart
