// End-to-end assertions on the paper's own worked examples: the §III/IV
// running example, the §IV-D one-off-module case, and the §V case study
// (Tables II-V shapes).
#include <gtest/gtest.h>

#include "core/partitioner.hpp"
#include "core/report.hpp"
#include "synth/ip_library.hpp"
#include "tests/core/example_designs.hpp"

namespace prpart {
namespace {

using synth::wireless_receiver_budget;
using synth::wireless_receiver_design;
using synth::wireless_receiver_modified_design;

PartitionerOptions case_study_options() {
  PartitionerOptions opt;
  // The case study is a single design; spend more effort than the sweep
  // default so the deeper candidate sets (pair partitions for D2) are
  // reached.
  opt.search.max_candidate_sets = 64;
  opt.search.max_move_evaluations = 4'000'000;
  return opt;
}

// The paper's Table IV resource accounting is looser than its own tile
// equations (its modular row quotes 48 BRAMs, below the raw Table II sum of
// 56): under Eqs. 3-5 neither the modular scheme nor the paper's own Table
// III solution fits the published 50-BRAM budget. The BRAM-relaxed budget
// restores the paper's three-way comparison; see EXPERIMENTS.md.
ResourceVec relaxed_budget() { return {6800, 64, 150}; }

TEST(CaseStudyEndToEnd, PublishedBudgetShape) {
  const Design d = wireless_receiver_design();
  const PartitionerResult r =
      partition_design(d, wireless_receiver_budget(), case_study_options());
  ASSERT_TRUE(r.feasible);

  // Static exceeds the device budget (Table IV row 1).
  EXPECT_FALSE(r.static_impl.eval.fits);
  EXPECT_EQ(r.static_impl.eval.total_frames, 0u);

  // Under strict tile accounting the modular scheme busts the BRAM budget.
  EXPECT_FALSE(r.modular.eval.fits);

  // The proposed scheme fits and is no worse than the single-region scheme.
  EXPECT_TRUE(r.proposed.eval.fits);
  EXPECT_LE(r.proposed.eval.total_frames,
            r.single_region.eval.total_frames);
}

TEST(CaseStudyEndToEnd, Table4Shape) {
  const Design d = wireless_receiver_design();
  const PartitionerResult r =
      partition_design(d, relaxed_budget(), case_study_options());
  ASSERT_TRUE(r.feasible);

  EXPECT_FALSE(r.static_impl.eval.fits);
  EXPECT_TRUE(r.modular.eval.fits);
  EXPECT_TRUE(r.proposed.eval.fits);

  // The paper's ordering: proposed < modular < single region on total
  // reconfiguration time (244,872 -> 235,266 there; our tile model gives
  // 248,850 for modular).
  EXPECT_LT(r.proposed.eval.total_frames, r.modular.eval.total_frames);
  EXPECT_LT(r.modular.eval.total_frames,
            r.single_region.eval.total_frames);

  // The improvement magnitude is in the paper's ballpark (~4%); accept
  // anything from 1% to 15%.
  const double gain =
      1.0 - static_cast<double>(r.proposed.eval.total_frames) /
                static_cast<double>(r.modular.eval.total_frames);
  EXPECT_GT(gain, 0.01);
  EXPECT_LT(gain, 0.15);
}

TEST(CaseStudyEndToEnd, ProposedUsesMultipleRegions) {
  const Design d = wireless_receiver_design();
  const PartitionerResult r =
      partition_design(d, relaxed_budget(), case_study_options());
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.proposed_from_search);
  // Table III uses five regions; our model must at least avoid the two
  // degenerate answers (everything in one region / nothing merged).
  EXPECT_GT(r.proposed.scheme.regions.size(), 1u);
}

TEST(CaseStudyEndToEnd, VideoModesShareARegion) {
  // The video decoder modes dominate area (Table II) and are mutually
  // exclusive, so any sensible partitioning keeps V1, V2, V3 in one region
  // (Table III PRR5 / Table V PRR4).
  const Design d = wireless_receiver_design();
  const PartitionerResult r =
      partition_design(d, relaxed_budget(), case_study_options());
  ASSERT_TRUE(r.feasible && r.proposed_from_search);

  // Find the global ids of the V modes.
  const std::size_t v1 = d.global_mode_id(4, 1);
  const std::size_t v2 = d.global_mode_id(4, 2);
  const std::size_t v3 = d.global_mode_id(4, 3);
  // Locate the region providing each V mode.
  auto region_of = [&](std::size_t mode) -> int {
    for (std::size_t reg = 0; reg < r.proposed.scheme.regions.size(); ++reg)
      for (std::size_t p : r.proposed.scheme.regions[reg].members)
        if (r.base_partitions[p].modes.test(mode)) return static_cast<int>(reg);
    return -1;  // provided by static logic
  };
  const int rv1 = region_of(v1);
  const int rv2 = region_of(v2);
  const int rv3 = region_of(v3);
  // All three V modes are too large for static promotion under this budget;
  // they must be in regions, and in the same one.
  ASSERT_GE(rv1, 0);
  ASSERT_GE(rv2, 0);
  ASSERT_GE(rv3, 0);
  EXPECT_EQ(rv1, rv2);
  EXPECT_EQ(rv2, rv3);
}

TEST(CaseStudyEndToEnd, ModifiedConfigurationsImproveMore) {
  // Table V: with the modified configuration set the proposed scheme beats
  // modular by more (6% vs 4% in the paper), and the design has more
  // static-promotion opportunity.
  const Design d = wireless_receiver_modified_design();
  const PartitionerResult r =
      partition_design(d, wireless_receiver_budget(), case_study_options());
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed.eval.fits);
  EXPECT_LT(r.proposed.eval.total_frames, r.modular.eval.total_frames);
  EXPECT_LT(r.proposed.eval.total_frames,
            r.single_region.eval.total_frames);
}

TEST(PaperRunningExample, ReportRendersAllArtifacts) {
  const Design d = testing::paper_example();
  const PartitionerResult r = partition_design(d, {1200, 10, 20});
  ASSERT_TRUE(r.feasible);
  const std::string t1 = render_base_partitions(d, r.base_partitions);
  EXPECT_NE(t1.find("{B2}"), std::string::npos);
  const std::string t3 =
      render_scheme_partitions(d, r.base_partitions, r.proposed.scheme);
  EXPECT_NE(t3.find("PRR1"), std::string::npos);
  const std::string t4 = render_scheme_comparison(r);
  EXPECT_NE(t4.find("Modular"), std::string::npos);
  EXPECT_NE(t4.find("Single region"), std::string::npos);
}

TEST(OneOffModules, PartitionerHandlesMode0Designs) {
  // §IV-D: CAN->FIR vs Ethernet->FPU->CRC, no mode relations.
  const Design d = testing::one_off_modules();
  const PartitionerResult r = partition_design(d, {100000, 100, 100});
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed.eval.valid);
  // With unconstrained area, zero reconfiguration time is reachable.
  EXPECT_EQ(r.proposed.eval.total_frames, 0u);
}

TEST(OneOffModules, TightBudgetSharesRegionsAcrossConfigurations) {
  const Design d = testing::one_off_modules();
  // Lower bound: max(config areas) = config 2 = (900, 4, 12) raw.
  const PartitionerResult r = partition_design(d, {960, 4, 16});
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proposed.eval.fits);
  EXPECT_LE(r.proposed.eval.total_frames,
            r.single_region.eval.total_frames);
}

}  // namespace
}  // namespace prpart
