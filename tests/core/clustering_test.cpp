#include "core/clustering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "design/synthetic.hpp"
#include "device/tiles.hpp"
#include "tests/core/example_designs.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::one_off_modules;
using testing::paper_example;

/// label -> frequency weight map for comparisons against Table I.
std::map<std::string, std::uint32_t> as_map(
    const Design& design, const std::vector<BasePartition>& partitions) {
  std::map<std::string, std::uint32_t> out;
  for (const BasePartition& p : partitions) {
    std::vector<std::string> names;
    for (std::size_t m : p.modes.bits()) names.push_back(design.mode_label(m));
    std::sort(names.begin(), names.end());
    std::string key;
    for (const std::string& n : names) key += n + ",";
    out[key] = p.frequency_weight;
  }
  return out;
}

TEST(Clustering, PaperExampleReproducesTable1) {
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m);

  // Table I has exactly 26 base partitions: 8 singletons, 13 pairs, 5
  // triples (the configurations themselves).
  EXPECT_EQ(partitions.size(), 26u);
  std::size_t singles = 0, pairs = 0, triples = 0;
  for (const BasePartition& p : partitions) {
    switch (p.modes.count()) {
      case 1: ++singles; break;
      case 2: ++pairs; break;
      case 3: ++triples; break;
      default: FAIL() << "unexpected partition size " << p.modes.count();
    }
  }
  EXPECT_EQ(singles, 8u);
  EXPECT_EQ(pairs, 13u);
  EXPECT_EQ(triples, 5u);

  const auto got = as_map(d, partitions);
  // Spot-check Table I entries (frequency weights).
  EXPECT_EQ(got.at("A2,"), 1u);
  EXPECT_EQ(got.at("B2,"), 4u);
  EXPECT_EQ(got.at("A1,"), 2u);
  EXPECT_EQ(got.at("A3,B2,"), 2u);
  EXPECT_EQ(got.at("B2,C3,"), 2u);
  EXPECT_EQ(got.at("A1,B1,"), 1u);
  EXPECT_EQ(got.at("A2,C3,"), 1u);
  EXPECT_EQ(got.at("A3,B2,C3,"), 1u);
  EXPECT_EQ(got.at("A1,B1,C1,"), 1u);
  EXPECT_EQ(got.at("A1,B2,C2,"), 1u);
  EXPECT_EQ(got.at("A2,B2,C3,"), 1u);
  EXPECT_EQ(got.at("A3,B2,C1,"), 1u);

  // The paper's exclusion: {A1,B2,C1} is a clique in the co-occurrence
  // graph (A1B2, B2C1, A1C1 all have weight 1) but never co-occurs as a
  // set, so it must NOT be a base partition.
  EXPECT_EQ(got.count("A1,B2,C1,"), 0u);
}

TEST(Clustering, KEdgesFieldMatchesSize) {
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  for (const BasePartition& p : enumerate_base_partitions(d, m)) {
    const std::size_t n = p.modes.count();
    EXPECT_EQ(p.edges, n * (n - 1) / 2);
  }
}

TEST(Clustering, AreaIsSumOfModeAreas) {
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  for (const BasePartition& p : enumerate_base_partitions(d, m)) {
    ResourceVec sum;
    for (std::size_t mode : p.modes.bits()) sum += d.mode_area(mode);
    EXPECT_EQ(p.area, sum);
    EXPECT_EQ(p.frames, frames_for(sum));
  }
}

TEST(Clustering, MatchesOracleOnPaperExample) {
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  const auto fast = as_map(d, enumerate_base_partitions(d, m));
  const auto oracle = as_map(d, enumerate_base_partitions_oracle(d, m));
  EXPECT_EQ(fast, oracle);
}

TEST(Clustering, MatchesOracleOnSyntheticDesigns) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    const SyntheticDesign s = generate_synthetic(
        rng, static_cast<CircuitClass>(seed % 4));
    const ConnectivityMatrix m(s.design);
    const auto fast = as_map(s.design, enumerate_base_partitions(s.design, m));
    const auto oracle =
        as_map(s.design, enumerate_base_partitions_oracle(s.design, m));
    EXPECT_EQ(fast, oracle) << "seed " << seed;
  }
}

TEST(Clustering, OneOffModulesYieldConfigurationsAsMaximalPartitions) {
  const Design d = one_off_modules();
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m);
  // Subsets of {C,F} (3) plus subsets of {E,P,R} (7): 10 total.
  EXPECT_EQ(partitions.size(), 10u);
  const auto got = as_map(d, partitions);
  EXPECT_EQ(got.count("C1,F1,"), 1u);
  EXPECT_EQ(got.count("E1,P1,R1,"), 1u);
  EXPECT_EQ(got.count("C1,E1,"), 0u);  // never co-occur
}

TEST(Clustering, DeadModesGetNoPartition) {
  const Design d = DesignBuilder("dead")
                       .module("A", {{"A1", {10, 0, 0}}, {"A2", {20, 0, 0}}})
                       .configuration({{"A", "A1"}})
                       .build();
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m);
  ASSERT_EQ(partitions.size(), 1u);
  EXPECT_TRUE(partitions[0].modes.test(0));
}

TEST(Clustering, DeterministicOrder) {
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  const auto a = enumerate_base_partitions(d, m);
  const auto b = enumerate_base_partitions(d, m);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].modes, b[i].modes);
}

TEST(Clustering, SizeCapKeepsSmallPartitionsAndFullConfigs) {
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  const auto capped = enumerate_base_partitions(d, m, 2);
  // Singletons and pairs survive (8 + 13); the five full configurations
  // are appended despite exceeding the cap.
  EXPECT_EQ(capped.size(), 26u);
  std::size_t triples = 0;
  for (const BasePartition& p : capped)
    if (p.modes.count() == 3) ++triples;
  EXPECT_EQ(triples, 5u);
}

TEST(Clustering, CapAtOrAboveWidthMatchesUnlimited) {
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  const auto unlimited = enumerate_base_partitions(d, m);
  const auto capped = enumerate_base_partitions(d, m, 3);
  EXPECT_EQ(unlimited.size(), capped.size());
}

TEST(Clustering, CapOfOneRejected) {
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  EXPECT_THROW(enumerate_base_partitions(d, m, 1), InternalError);
}

TEST(Clustering, WidePartitionerWithCapIsFast) {
  // 18 modules x 4 modes: unlimited enumeration visits ~2^18 subsets per
  // configuration; a cap of 3 keeps the partitioner responsive and valid.
  DesignBuilder b("wide");
  for (int mi = 0; mi < 18; ++mi) {
    const std::string name = "W" + std::to_string(mi);
    std::vector<Mode> modes;
    for (int k = 0; k < 4; ++k)
      modes.push_back(Mode{name + "." + std::to_string(k),
                           {static_cast<std::uint32_t>(40 + 10 * k), 0, 0}});
    b.module(name, modes);
  }
  for (int k = 0; k < 4; ++k) {
    std::vector<std::pair<std::string, std::string>> choices;
    for (int mi = 0; mi < 18; ++mi) {
      const std::string name = "W" + std::to_string(mi);
      choices.emplace_back(name, name + "." + std::to_string(k));
    }
    b.configuration(choices);
  }
  const Design d = b.build();
  const ConnectivityMatrix m(d);
  const auto partitions = enumerate_base_partitions(d, m, 3);
  // 72 singletons + capped pairs/triples + 4 full configurations; far fewer
  // than the ~1M of the unlimited enumeration.
  EXPECT_LT(partitions.size(), 100000u);
  std::size_t full = 0;
  for (const BasePartition& p : partitions)
    if (p.modes.count() == 18) ++full;
  EXPECT_EQ(full, 4u);
}

TEST(Clustering, FrequencyWeightIsMinEdgeWeightForTriples) {
  const Design d = paper_example();
  const ConnectivityMatrix m(d);
  // "the frequency weight of sub-graph {A3,B2,C3} is 1, which is the edge
  // weight between A3 and C3" -- even though A3-B2 and B2-C3 have weight 2.
  for (const BasePartition& p : enumerate_base_partitions(d, m)) {
    if (p.modes.count() != 3) continue;
    std::uint32_t min_edge = ~0u;
    const auto ms = p.modes.bits();
    for (std::size_t x = 0; x < ms.size(); ++x)
      for (std::size_t y = x + 1; y < ms.size(); ++y)
        min_edge = std::min(min_edge, m.edge_weight(ms[x], ms[y]));
    EXPECT_EQ(p.frequency_weight, min_edge);
  }
}

}  // namespace
}  // namespace prpart
