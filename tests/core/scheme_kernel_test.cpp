#include "core/eval_kernel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "core/covering.hpp"
#include "core/scheme.hpp"
#include "core/schemes.hpp"
#include "design/synthetic.hpp"
#include "tests/core/example_designs.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace prpart {
namespace {

using testing::paper_example;

// The kernel's contract is byte-identity with the scalar reference: every
// field of SchemeEvaluation, including diagnostics and the partial active
// tables an invalid evaluation leaves behind.
void expect_identical(const SchemeEvaluation& ref, const SchemeEvaluation& ker,
                      const std::string& what) {
  ASSERT_EQ(ref.valid, ker.valid) << what;
  EXPECT_EQ(ref.invalid_reason, ker.invalid_reason) << what;
  EXPECT_EQ(ref.fits, ker.fits) << what;
  EXPECT_EQ(ref.pr_resources, ker.pr_resources) << what;
  EXPECT_EQ(ref.static_resources, ker.static_resources) << what;
  EXPECT_EQ(ref.total_resources, ker.total_resources) << what;
  EXPECT_EQ(ref.total_frames, ker.total_frames) << what;
  EXPECT_EQ(ref.worst_frames, ker.worst_frames) << what;
  ASSERT_EQ(ref.regions.size(), ker.regions.size()) << what;
  for (std::size_t r = 0; r < ref.regions.size(); ++r) {
    EXPECT_EQ(ref.regions[r].raw, ker.regions[r].raw) << what << " r" << r;
    EXPECT_EQ(ref.regions[r].tiles, ker.regions[r].tiles) << what << " r" << r;
    EXPECT_EQ(ref.regions[r].frames, ker.regions[r].frames)
        << what << " r" << r;
    EXPECT_EQ(ref.regions[r].reconfig_pairs, ker.regions[r].reconfig_pairs)
        << what << " r" << r;
    EXPECT_EQ(ref.regions[r].active, ker.regions[r].active)
        << what << " r" << r;
  }
}

struct DesignUnderTest {
  Design design;
  ConnectivityMatrix matrix;
  std::vector<BasePartition> partitions;
};

DesignUnderTest make_dut(Design design) {
  ConnectivityMatrix matrix(design);
  std::vector<BasePartition> partitions =
      enumerate_base_partitions(design, matrix);
  return {std::move(design), std::move(matrix), std::move(partitions)};
}

// Random grouping of a complete cover into regions, with an optional static
// promotion. Produces a mix of valid and invalid-double-activation schemes —
// exactly the population the search explores.
PartitionScheme random_scheme(const DesignUnderTest& dut, Rng& rng) {
  const auto order = covering_order(dut.partitions);
  const CoverResult cover_result =
      cover(dut.partitions, dut.matrix, order, /*skip=*/0);
  PartitionScheme scheme;
  if (cover_result.selected.empty()) return scheme;
  const std::size_t nregions =
      1 + static_cast<std::size_t>(rng.below(cover_result.selected.size()));
  scheme.regions.resize(nregions);
  for (std::size_t p : cover_result.selected) {
    if (rng.chance(0.1)) {
      scheme.static_members.push_back(p);
    } else {
      scheme.regions[rng.below(nregions)].members.push_back(p);
    }
  }
  std::erase_if(scheme.regions,
                [](const Region& r) { return r.members.empty(); });
  if (scheme.regions.empty() && !cover_result.selected.empty())
    scheme.regions.push_back(Region{{cover_result.selected.front()}});
  return scheme;
}

TEST(SchemeKernel, MatchesReferenceOnRandomSchemes) {
  // The suite round-robins the four circuit classes, so the frame weights
  // are non-uniform across regions (BRAM/DSP tiles carry different frame
  // counts than CLB tiles).
  const auto suite = generate_synthetic_suite(/*seed=*/20260805, /*count=*/24);
  const ResourceVec budget{30720, 456, 384};
  Rng rng(7);
  for (const SyntheticDesign& s : suite) {
    const DesignUnderTest dut = make_dut(s.design);
    EvalContext context(dut.design, dut.matrix, dut.partitions);
    EvalScratch scratch;
    for (int k = 0; k < 12; ++k) {
      const PartitionScheme scheme = random_scheme(dut, rng);
      if (scheme.regions.empty()) continue;
      const SchemeEvaluation ref = evaluate_scheme_reference(
          dut.design, dut.matrix, dut.partitions, scheme, budget);
      const SchemeEvaluation ker = context.evaluate(scheme, budget, scratch);
      expect_identical(ref, ker,
                       dut.design.name() + " scheme " + std::to_string(k));
      // The public entry point is kernel-backed; it must agree too.
      expect_identical(ref,
                       evaluate_scheme(dut.design, dut.matrix, dut.partitions,
                                       scheme, budget),
                       dut.design.name() + " wrapper " + std::to_string(k));
    }
    EXPECT_GT(scratch.stats.kernel_evaluations, 0u);
  }
}

TEST(SchemeKernel, MatchesReferenceOnBaselineSchemes) {
  const auto suite = generate_synthetic_suite(/*seed=*/99, /*count=*/16);
  const ResourceVec budget{10000, 100, 100};
  for (const SyntheticDesign& s : suite) {
    const DesignUnderTest dut = make_dut(s.design);
    EvalContext context(dut.design, dut.matrix, dut.partitions);
    EvalScratch scratch;
    for (const PartitionScheme& scheme :
         {make_modular_scheme(dut.design, dut.matrix, dut.partitions),
          make_static_scheme(dut.design, dut.matrix, dut.partitions)}) {
      const SchemeEvaluation ref = evaluate_scheme_reference(
          dut.design, dut.matrix, dut.partitions, scheme, budget);
      expect_identical(ref, context.evaluate(scheme, budget, scratch),
                       dut.design.name() + " baseline");
    }
  }
}

TEST(SchemeKernel, MatchesReferenceOnUncoveredSchemes) {
  // Deleting one region from the modular scheme leaves that module's modes
  // unprovided in every configuration using them: the invalid-coverage
  // diagnosis (first failing configuration) must match exactly.
  const auto suite = generate_synthetic_suite(/*seed=*/4242, /*count=*/16);
  const ResourceVec budget{30720, 456, 384};
  for (const SyntheticDesign& s : suite) {
    const DesignUnderTest dut = make_dut(s.design);
    EvalContext context(dut.design, dut.matrix, dut.partitions);
    EvalScratch scratch;
    PartitionScheme scheme =
        make_modular_scheme(dut.design, dut.matrix, dut.partitions);
    if (scheme.regions.size() < 2) continue;
    for (std::size_t drop = 0; drop < scheme.regions.size(); ++drop) {
      PartitionScheme damaged = scheme;
      damaged.regions.erase(damaged.regions.begin() +
                            static_cast<std::ptrdiff_t>(drop));
      const SchemeEvaluation ref = evaluate_scheme_reference(
          dut.design, dut.matrix, dut.partitions, damaged, budget);
      const SchemeEvaluation ker = context.evaluate(damaged, budget, scratch);
      expect_identical(ref, ker, dut.design.name() + " drop " +
                                     std::to_string(drop));
      if (!ref.valid) {
        EXPECT_NE(ref.invalid_reason.find("not provided"), std::string::npos);
      }
    }
  }
}

TEST(SchemeKernel, FirstDiagnosedDoubleActivationIsPinned) {
  // Merging two modular regions of different modules double-activates every
  // configuration containing both modules. With several conflicting merges,
  // the diagnosis must be the first region in scheme order and the lowest
  // conflicting configuration — identically in reference and kernel.
  const DesignUnderTest dut = make_dut(paper_example());
  const ResourceVec budget{100000, 1000, 1000};
  PartitionScheme scheme =
      make_modular_scheme(dut.design, dut.matrix, dut.partitions);
  ASSERT_GE(scheme.regions.size(), 3u);
  // Merge region 1 into region 0 and region 2's first member into region 1.
  PartitionScheme damaged;
  damaged.regions.push_back(Region{scheme.regions[0].members});
  for (std::size_t p : scheme.regions[1].members)
    damaged.regions[0].members.push_back(p);
  damaged.regions.push_back(Region{scheme.regions[1].members});
  damaged.regions[1].members.push_back(scheme.regions[2].members.front());
  for (std::size_t r = 2; r < scheme.regions.size(); ++r)
    damaged.regions.push_back(scheme.regions[r]);

  // Independent in-test oracle for the first-diagnosed configuration: scan
  // regions in order, configurations ascending, and report the first with
  // two intersecting members.
  std::size_t expected_conf = dut.matrix.configs();
  for (const Region& region : damaged.regions) {
    for (std::size_t c = 0;
         c < dut.matrix.configs() && expected_conf == dut.matrix.configs();
         ++c) {
      int hits = 0;
      for (std::size_t p : region.members)
        if (dut.partitions[p].modes.intersects(dut.matrix.row(c))) ++hits;
      if (hits >= 2) expected_conf = c;
    }
    if (expected_conf != dut.matrix.configs()) break;
  }
  ASSERT_LT(expected_conf, dut.matrix.configs());

  EvalContext context(dut.design, dut.matrix, dut.partitions);
  EvalScratch scratch;
  const SchemeEvaluation ref = evaluate_scheme_reference(
      dut.design, dut.matrix, dut.partitions, damaged, budget);
  const SchemeEvaluation ker = context.evaluate(damaged, budget, scratch);
  ASSERT_FALSE(ref.valid);
  const std::string expected_name =
      dut.design.configurations()[expected_conf].name;
  EXPECT_NE(ref.invalid_reason.find(expected_name), std::string::npos)
      << ref.invalid_reason;
  expect_identical(ref, ker, "double-activation");
  // Fail-fast shape: regions after the diagnosed one keep empty tables.
  EXPECT_EQ(ref.regions[0].active.size(), dut.matrix.configs());
  for (std::size_t r = 1; r < ref.regions.size(); ++r)
    EXPECT_TRUE(ref.regions[r].active.empty()) << r;
}

TEST(SchemeKernel, EmptyRegionThrowsInBothImplementations) {
  const DesignUnderTest dut = make_dut(paper_example());
  const ResourceVec budget{100000, 1000, 1000};
  PartitionScheme scheme =
      make_modular_scheme(dut.design, dut.matrix, dut.partitions);
  scheme.regions.push_back(Region{});
  EvalContext context(dut.design, dut.matrix, dut.partitions);
  EvalScratch scratch;
  EXPECT_THROW(evaluate_scheme_reference(dut.design, dut.matrix,
                                         dut.partitions, scheme, budget),
               InternalError);
  EXPECT_THROW(context.evaluate(scheme, budget, scratch), InternalError);
}

TEST(SchemeKernel, CollapsesDuplicateSignatures) {
  // The paper example's configurations repeat module-mode combinations, so
  // grouping by active signature must collapse at least the pairs the
  // duplicate detection finds, while worst_frames stays exact (checked in
  // the identity tests); here we pin that the counter moves only on valid
  // evaluations and never exceeds C-1 per call.
  const auto suite = generate_synthetic_suite(/*seed=*/7, /*count=*/8);
  const ResourceVec budget{30720, 456, 384};
  for (const SyntheticDesign& s : suite) {
    const DesignUnderTest dut = make_dut(s.design);
    EvalContext context(dut.design, dut.matrix, dut.partitions);
    EvalScratch scratch;
    const PartitionScheme scheme =
        make_modular_scheme(dut.design, dut.matrix, dut.partitions);
    const std::uint64_t before = scratch.stats.signature_collapsed_configs;
    const SchemeEvaluation eval = context.evaluate(scheme, budget, scratch);
    const std::uint64_t delta =
        scratch.stats.signature_collapsed_configs - before;
    if (!eval.valid) {
      EXPECT_EQ(delta, 0u);
    } else {
      EXPECT_LT(delta, dut.matrix.configs());
    }
  }
}

}  // namespace
}  // namespace prpart
