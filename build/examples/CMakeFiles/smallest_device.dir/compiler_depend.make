# Empty compiler generated dependencies file for smallest_device.
# This may be replaced when dependencies are built.
