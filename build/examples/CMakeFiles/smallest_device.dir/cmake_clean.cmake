file(REMOVE_RECURSE
  "CMakeFiles/smallest_device.dir/smallest_device.cpp.o"
  "CMakeFiles/smallest_device.dir/smallest_device.cpp.o.d"
  "smallest_device"
  "smallest_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smallest_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
