# Empty dependencies file for adaptive_radio.
# This may be replaced when dependencies are built.
