file(REMOVE_RECURSE
  "CMakeFiles/adaptive_radio.dir/adaptive_radio.cpp.o"
  "CMakeFiles/adaptive_radio.dir/adaptive_radio.cpp.o.d"
  "adaptive_radio"
  "adaptive_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
