# Empty compiler generated dependencies file for wireless_receiver.
# This may be replaced when dependencies are built.
