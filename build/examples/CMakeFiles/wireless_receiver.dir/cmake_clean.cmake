file(REMOVE_RECURSE
  "CMakeFiles/wireless_receiver.dir/wireless_receiver.cpp.o"
  "CMakeFiles/wireless_receiver.dir/wireless_receiver.cpp.o.d"
  "wireless_receiver"
  "wireless_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
