# Empty compiler generated dependencies file for streaming_receiver.
# This may be replaced when dependencies are built.
