file(REMOVE_RECURSE
  "CMakeFiles/streaming_receiver.dir/streaming_receiver.cpp.o"
  "CMakeFiles/streaming_receiver.dir/streaming_receiver.cpp.o.d"
  "streaming_receiver"
  "streaming_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
