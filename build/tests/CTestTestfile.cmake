# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_design[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_reconfig[1]_include.cmake")
include("/root/repo/build/tests/test_floorplan[1]_include.cmake")
include("/root/repo/build/tests/test_bitstream[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_related[1]_include.cmake")
include("/root/repo/build/tests/test_stream[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
