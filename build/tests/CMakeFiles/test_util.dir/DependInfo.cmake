
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/args_test.cpp" "tests/CMakeFiles/test_util.dir/util/args_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/args_test.cpp.o.d"
  "/root/repo/tests/util/bitset_test.cpp" "tests/CMakeFiles/test_util.dir/util/bitset_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/bitset_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/test_util.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/histogram_test.cpp" "tests/CMakeFiles/test_util.dir/util/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/histogram_test.cpp.o.d"
  "/root/repo/tests/util/parallel_for_test.cpp" "tests/CMakeFiles/test_util.dir/util/parallel_for_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/parallel_for_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/strings_test.cpp" "tests/CMakeFiles/test_util.dir/util/strings_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/strings_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitstream/CMakeFiles/prpart_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prpart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/prpart_design.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/prpart_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/prpart_reconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/prpart_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/prpart_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
