file(REMOVE_RECURSE
  "CMakeFiles/test_reconfig.dir/reconfig/application_test.cpp.o"
  "CMakeFiles/test_reconfig.dir/reconfig/application_test.cpp.o.d"
  "CMakeFiles/test_reconfig.dir/reconfig/controller_test.cpp.o"
  "CMakeFiles/test_reconfig.dir/reconfig/controller_test.cpp.o.d"
  "CMakeFiles/test_reconfig.dir/reconfig/icap_datapath_test.cpp.o"
  "CMakeFiles/test_reconfig.dir/reconfig/icap_datapath_test.cpp.o.d"
  "CMakeFiles/test_reconfig.dir/reconfig/icap_test.cpp.o"
  "CMakeFiles/test_reconfig.dir/reconfig/icap_test.cpp.o.d"
  "CMakeFiles/test_reconfig.dir/reconfig/markov_test.cpp.o"
  "CMakeFiles/test_reconfig.dir/reconfig/markov_test.cpp.o.d"
  "CMakeFiles/test_reconfig.dir/reconfig/policy_test.cpp.o"
  "CMakeFiles/test_reconfig.dir/reconfig/policy_test.cpp.o.d"
  "CMakeFiles/test_reconfig.dir/reconfig/prefetch_test.cpp.o"
  "CMakeFiles/test_reconfig.dir/reconfig/prefetch_test.cpp.o.d"
  "test_reconfig"
  "test_reconfig.pdb"
  "test_reconfig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
