file(REMOVE_RECURSE
  "CMakeFiles/test_design.dir/design/builder_test.cpp.o"
  "CMakeFiles/test_design.dir/design/builder_test.cpp.o.d"
  "CMakeFiles/test_design.dir/design/design_test.cpp.o"
  "CMakeFiles/test_design.dir/design/design_test.cpp.o.d"
  "CMakeFiles/test_design.dir/design/io_xml_test.cpp.o"
  "CMakeFiles/test_design.dir/design/io_xml_test.cpp.o.d"
  "CMakeFiles/test_design.dir/design/lint_test.cpp.o"
  "CMakeFiles/test_design.dir/design/lint_test.cpp.o.d"
  "CMakeFiles/test_design.dir/design/synthetic_test.cpp.o"
  "CMakeFiles/test_design.dir/design/synthetic_test.cpp.o.d"
  "test_design"
  "test_design.pdb"
  "test_design[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
