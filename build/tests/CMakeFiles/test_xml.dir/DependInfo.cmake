
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xml/xml_fuzz_test.cpp" "tests/CMakeFiles/test_xml.dir/xml/xml_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_xml.dir/xml/xml_fuzz_test.cpp.o.d"
  "/root/repo/tests/xml/xml_test.cpp" "tests/CMakeFiles/test_xml.dir/xml/xml_test.cpp.o" "gcc" "tests/CMakeFiles/test_xml.dir/xml/xml_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitstream/CMakeFiles/prpart_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prpart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/prpart_design.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/prpart_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/prpart_reconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/prpart_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/prpart_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
