# Empty compiler generated dependencies file for test_related.
# This may be replaced when dependencies are built.
