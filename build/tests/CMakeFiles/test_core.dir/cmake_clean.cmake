file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/clustering_test.cpp.o"
  "CMakeFiles/test_core.dir/core/clustering_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/compatibility_test.cpp.o"
  "CMakeFiles/test_core.dir/core/compatibility_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/connectivity_test.cpp.o"
  "CMakeFiles/test_core.dir/core/connectivity_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/covering_test.cpp.o"
  "CMakeFiles/test_core.dir/core/covering_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/optimal_test.cpp.o"
  "CMakeFiles/test_core.dir/core/optimal_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/paper_example_test.cpp.o"
  "CMakeFiles/test_core.dir/core/paper_example_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/partitioner_test.cpp.o"
  "CMakeFiles/test_core.dir/core/partitioner_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/report_test.cpp.o"
  "CMakeFiles/test_core.dir/core/report_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/result_io_test.cpp.o"
  "CMakeFiles/test_core.dir/core/result_io_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/scheme_test.cpp.o"
  "CMakeFiles/test_core.dir/core/scheme_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/schemes_test.cpp.o"
  "CMakeFiles/test_core.dir/core/schemes_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/search_test.cpp.o"
  "CMakeFiles/test_core.dir/core/search_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/weighted_search_test.cpp.o"
  "CMakeFiles/test_core.dir/core/weighted_search_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
