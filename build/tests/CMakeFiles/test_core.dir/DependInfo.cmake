
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/clustering_test.cpp" "tests/CMakeFiles/test_core.dir/core/clustering_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/clustering_test.cpp.o.d"
  "/root/repo/tests/core/compatibility_test.cpp" "tests/CMakeFiles/test_core.dir/core/compatibility_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/compatibility_test.cpp.o.d"
  "/root/repo/tests/core/connectivity_test.cpp" "tests/CMakeFiles/test_core.dir/core/connectivity_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/connectivity_test.cpp.o.d"
  "/root/repo/tests/core/covering_test.cpp" "tests/CMakeFiles/test_core.dir/core/covering_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/covering_test.cpp.o.d"
  "/root/repo/tests/core/optimal_test.cpp" "tests/CMakeFiles/test_core.dir/core/optimal_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/optimal_test.cpp.o.d"
  "/root/repo/tests/core/paper_example_test.cpp" "tests/CMakeFiles/test_core.dir/core/paper_example_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/paper_example_test.cpp.o.d"
  "/root/repo/tests/core/partitioner_test.cpp" "tests/CMakeFiles/test_core.dir/core/partitioner_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/partitioner_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/test_core.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/core/result_io_test.cpp" "tests/CMakeFiles/test_core.dir/core/result_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/result_io_test.cpp.o.d"
  "/root/repo/tests/core/scheme_test.cpp" "tests/CMakeFiles/test_core.dir/core/scheme_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/scheme_test.cpp.o.d"
  "/root/repo/tests/core/schemes_test.cpp" "tests/CMakeFiles/test_core.dir/core/schemes_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/schemes_test.cpp.o.d"
  "/root/repo/tests/core/search_test.cpp" "tests/CMakeFiles/test_core.dir/core/search_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/search_test.cpp.o.d"
  "/root/repo/tests/core/weighted_search_test.cpp" "tests/CMakeFiles/test_core.dir/core/weighted_search_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/weighted_search_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitstream/CMakeFiles/prpart_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prpart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/prpart_design.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/prpart_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/prpart_reconfig.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/prpart_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/prpart_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
