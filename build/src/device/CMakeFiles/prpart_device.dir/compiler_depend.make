# Empty compiler generated dependencies file for prpart_device.
# This may be replaced when dependencies are built.
