file(REMOVE_RECURSE
  "CMakeFiles/prpart_device.dir/device.cpp.o"
  "CMakeFiles/prpart_device.dir/device.cpp.o.d"
  "CMakeFiles/prpart_device.dir/resources.cpp.o"
  "CMakeFiles/prpart_device.dir/resources.cpp.o.d"
  "libprpart_device.a"
  "libprpart_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
