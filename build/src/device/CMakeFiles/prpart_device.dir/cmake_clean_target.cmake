file(REMOVE_RECURSE
  "libprpart_device.a"
)
