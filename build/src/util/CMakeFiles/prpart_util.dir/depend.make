# Empty dependencies file for prpart_util.
# This may be replaced when dependencies are built.
