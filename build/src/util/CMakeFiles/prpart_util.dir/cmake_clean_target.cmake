file(REMOVE_RECURSE
  "libprpart_util.a"
)
