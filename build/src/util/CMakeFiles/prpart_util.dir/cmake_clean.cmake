file(REMOVE_RECURSE
  "CMakeFiles/prpart_util.dir/args.cpp.o"
  "CMakeFiles/prpart_util.dir/args.cpp.o.d"
  "CMakeFiles/prpart_util.dir/bitset.cpp.o"
  "CMakeFiles/prpart_util.dir/bitset.cpp.o.d"
  "CMakeFiles/prpart_util.dir/csv.cpp.o"
  "CMakeFiles/prpart_util.dir/csv.cpp.o.d"
  "CMakeFiles/prpart_util.dir/histogram.cpp.o"
  "CMakeFiles/prpart_util.dir/histogram.cpp.o.d"
  "CMakeFiles/prpart_util.dir/parallel_for.cpp.o"
  "CMakeFiles/prpart_util.dir/parallel_for.cpp.o.d"
  "CMakeFiles/prpart_util.dir/rng.cpp.o"
  "CMakeFiles/prpart_util.dir/rng.cpp.o.d"
  "CMakeFiles/prpart_util.dir/strings.cpp.o"
  "CMakeFiles/prpart_util.dir/strings.cpp.o.d"
  "CMakeFiles/prpart_util.dir/table.cpp.o"
  "CMakeFiles/prpart_util.dir/table.cpp.o.d"
  "libprpart_util.a"
  "libprpart_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
