# Empty compiler generated dependencies file for prpart_synth.
# This may be replaced when dependencies are built.
