file(REMOVE_RECURSE
  "libprpart_synth.a"
)
