
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/estimator.cpp" "src/synth/CMakeFiles/prpart_synth.dir/estimator.cpp.o" "gcc" "src/synth/CMakeFiles/prpart_synth.dir/estimator.cpp.o.d"
  "/root/repo/src/synth/ip_library.cpp" "src/synth/CMakeFiles/prpart_synth.dir/ip_library.cpp.o" "gcc" "src/synth/CMakeFiles/prpart_synth.dir/ip_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/design/CMakeFiles/prpart_design.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/prpart_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
