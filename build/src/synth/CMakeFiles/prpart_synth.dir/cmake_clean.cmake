file(REMOVE_RECURSE
  "CMakeFiles/prpart_synth.dir/estimator.cpp.o"
  "CMakeFiles/prpart_synth.dir/estimator.cpp.o.d"
  "CMakeFiles/prpart_synth.dir/ip_library.cpp.o"
  "CMakeFiles/prpart_synth.dir/ip_library.cpp.o.d"
  "libprpart_synth.a"
  "libprpart_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
