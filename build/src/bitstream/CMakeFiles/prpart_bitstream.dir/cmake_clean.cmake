file(REMOVE_RECURSE
  "CMakeFiles/prpart_bitstream.dir/bitstream.cpp.o"
  "CMakeFiles/prpart_bitstream.dir/bitstream.cpp.o.d"
  "CMakeFiles/prpart_bitstream.dir/config_memory.cpp.o"
  "CMakeFiles/prpart_bitstream.dir/config_memory.cpp.o.d"
  "CMakeFiles/prpart_bitstream.dir/frame_address.cpp.o"
  "CMakeFiles/prpart_bitstream.dir/frame_address.cpp.o.d"
  "libprpart_bitstream.a"
  "libprpart_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
