file(REMOVE_RECURSE
  "libprpart_bitstream.a"
)
