# Empty compiler generated dependencies file for prpart_bitstream.
# This may be replaced when dependencies are built.
