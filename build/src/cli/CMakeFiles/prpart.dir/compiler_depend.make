# Empty compiler generated dependencies file for prpart.
# This may be replaced when dependencies are built.
