file(REMOVE_RECURSE
  "CMakeFiles/prpart.dir/main.cpp.o"
  "CMakeFiles/prpart.dir/main.cpp.o.d"
  "prpart"
  "prpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
