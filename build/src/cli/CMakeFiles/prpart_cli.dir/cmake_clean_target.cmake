file(REMOVE_RECURSE
  "libprpart_cli.a"
)
