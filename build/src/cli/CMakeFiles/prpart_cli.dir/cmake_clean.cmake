file(REMOVE_RECURSE
  "CMakeFiles/prpart_cli.dir/cli.cpp.o"
  "CMakeFiles/prpart_cli.dir/cli.cpp.o.d"
  "libprpart_cli.a"
  "libprpart_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
