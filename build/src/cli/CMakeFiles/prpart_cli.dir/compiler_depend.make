# Empty compiler generated dependencies file for prpart_cli.
# This may be replaced when dependencies are built.
