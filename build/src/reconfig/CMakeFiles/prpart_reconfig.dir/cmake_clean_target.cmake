file(REMOVE_RECURSE
  "libprpart_reconfig.a"
)
