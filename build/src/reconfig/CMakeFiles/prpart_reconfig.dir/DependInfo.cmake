
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reconfig/application.cpp" "src/reconfig/CMakeFiles/prpart_reconfig.dir/application.cpp.o" "gcc" "src/reconfig/CMakeFiles/prpart_reconfig.dir/application.cpp.o.d"
  "/root/repo/src/reconfig/controller.cpp" "src/reconfig/CMakeFiles/prpart_reconfig.dir/controller.cpp.o" "gcc" "src/reconfig/CMakeFiles/prpart_reconfig.dir/controller.cpp.o.d"
  "/root/repo/src/reconfig/icap.cpp" "src/reconfig/CMakeFiles/prpart_reconfig.dir/icap.cpp.o" "gcc" "src/reconfig/CMakeFiles/prpart_reconfig.dir/icap.cpp.o.d"
  "/root/repo/src/reconfig/icap_datapath.cpp" "src/reconfig/CMakeFiles/prpart_reconfig.dir/icap_datapath.cpp.o" "gcc" "src/reconfig/CMakeFiles/prpart_reconfig.dir/icap_datapath.cpp.o.d"
  "/root/repo/src/reconfig/markov.cpp" "src/reconfig/CMakeFiles/prpart_reconfig.dir/markov.cpp.o" "gcc" "src/reconfig/CMakeFiles/prpart_reconfig.dir/markov.cpp.o.d"
  "/root/repo/src/reconfig/policy.cpp" "src/reconfig/CMakeFiles/prpart_reconfig.dir/policy.cpp.o" "gcc" "src/reconfig/CMakeFiles/prpart_reconfig.dir/policy.cpp.o.d"
  "/root/repo/src/reconfig/prefetch.cpp" "src/reconfig/CMakeFiles/prpart_reconfig.dir/prefetch.cpp.o" "gcc" "src/reconfig/CMakeFiles/prpart_reconfig.dir/prefetch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/prpart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/design/CMakeFiles/prpart_design.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/prpart_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
