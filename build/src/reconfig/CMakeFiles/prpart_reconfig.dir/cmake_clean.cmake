file(REMOVE_RECURSE
  "CMakeFiles/prpart_reconfig.dir/application.cpp.o"
  "CMakeFiles/prpart_reconfig.dir/application.cpp.o.d"
  "CMakeFiles/prpart_reconfig.dir/controller.cpp.o"
  "CMakeFiles/prpart_reconfig.dir/controller.cpp.o.d"
  "CMakeFiles/prpart_reconfig.dir/icap.cpp.o"
  "CMakeFiles/prpart_reconfig.dir/icap.cpp.o.d"
  "CMakeFiles/prpart_reconfig.dir/icap_datapath.cpp.o"
  "CMakeFiles/prpart_reconfig.dir/icap_datapath.cpp.o.d"
  "CMakeFiles/prpart_reconfig.dir/markov.cpp.o"
  "CMakeFiles/prpart_reconfig.dir/markov.cpp.o.d"
  "CMakeFiles/prpart_reconfig.dir/policy.cpp.o"
  "CMakeFiles/prpart_reconfig.dir/policy.cpp.o.d"
  "CMakeFiles/prpart_reconfig.dir/prefetch.cpp.o"
  "CMakeFiles/prpart_reconfig.dir/prefetch.cpp.o.d"
  "libprpart_reconfig.a"
  "libprpart_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
