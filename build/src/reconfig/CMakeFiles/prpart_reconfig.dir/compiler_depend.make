# Empty compiler generated dependencies file for prpart_reconfig.
# This may be replaced when dependencies are built.
