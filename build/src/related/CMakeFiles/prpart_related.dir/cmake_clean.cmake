file(REMOVE_RECURSE
  "CMakeFiles/prpart_related.dir/rana_clustering.cpp.o"
  "CMakeFiles/prpart_related.dir/rana_clustering.cpp.o.d"
  "libprpart_related.a"
  "libprpart_related.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
