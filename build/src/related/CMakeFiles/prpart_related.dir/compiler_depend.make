# Empty compiler generated dependencies file for prpart_related.
# This may be replaced when dependencies are built.
