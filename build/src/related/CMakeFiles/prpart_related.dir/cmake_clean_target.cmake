file(REMOVE_RECURSE
  "libprpart_related.a"
)
