file(REMOVE_RECURSE
  "libprpart_design.a"
)
