# Empty dependencies file for prpart_design.
# This may be replaced when dependencies are built.
