
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/design/builder.cpp" "src/design/CMakeFiles/prpart_design.dir/builder.cpp.o" "gcc" "src/design/CMakeFiles/prpart_design.dir/builder.cpp.o.d"
  "/root/repo/src/design/design.cpp" "src/design/CMakeFiles/prpart_design.dir/design.cpp.o" "gcc" "src/design/CMakeFiles/prpart_design.dir/design.cpp.o.d"
  "/root/repo/src/design/io_xml.cpp" "src/design/CMakeFiles/prpart_design.dir/io_xml.cpp.o" "gcc" "src/design/CMakeFiles/prpart_design.dir/io_xml.cpp.o.d"
  "/root/repo/src/design/lint.cpp" "src/design/CMakeFiles/prpart_design.dir/lint.cpp.o" "gcc" "src/design/CMakeFiles/prpart_design.dir/lint.cpp.o.d"
  "/root/repo/src/design/synthetic.cpp" "src/design/CMakeFiles/prpart_design.dir/synthetic.cpp.o" "gcc" "src/design/CMakeFiles/prpart_design.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/prpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/prpart_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
