file(REMOVE_RECURSE
  "CMakeFiles/prpart_design.dir/builder.cpp.o"
  "CMakeFiles/prpart_design.dir/builder.cpp.o.d"
  "CMakeFiles/prpart_design.dir/design.cpp.o"
  "CMakeFiles/prpart_design.dir/design.cpp.o.d"
  "CMakeFiles/prpart_design.dir/io_xml.cpp.o"
  "CMakeFiles/prpart_design.dir/io_xml.cpp.o.d"
  "CMakeFiles/prpart_design.dir/lint.cpp.o"
  "CMakeFiles/prpart_design.dir/lint.cpp.o.d"
  "CMakeFiles/prpart_design.dir/synthetic.cpp.o"
  "CMakeFiles/prpart_design.dir/synthetic.cpp.o.d"
  "libprpart_design.a"
  "libprpart_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
