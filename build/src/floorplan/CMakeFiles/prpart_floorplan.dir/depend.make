# Empty dependencies file for prpart_floorplan.
# This may be replaced when dependencies are built.
