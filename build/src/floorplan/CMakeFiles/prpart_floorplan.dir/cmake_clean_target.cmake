file(REMOVE_RECURSE
  "libprpart_floorplan.a"
)
