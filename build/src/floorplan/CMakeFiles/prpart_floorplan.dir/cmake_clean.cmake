file(REMOVE_RECURSE
  "CMakeFiles/prpart_floorplan.dir/annealing.cpp.o"
  "CMakeFiles/prpart_floorplan.dir/annealing.cpp.o.d"
  "CMakeFiles/prpart_floorplan.dir/floorplanner.cpp.o"
  "CMakeFiles/prpart_floorplan.dir/floorplanner.cpp.o.d"
  "libprpart_floorplan.a"
  "libprpart_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
