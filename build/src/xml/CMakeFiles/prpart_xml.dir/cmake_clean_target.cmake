file(REMOVE_RECURSE
  "libprpart_xml.a"
)
