# Empty dependencies file for prpart_xml.
# This may be replaced when dependencies are built.
