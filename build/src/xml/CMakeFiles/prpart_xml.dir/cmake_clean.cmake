file(REMOVE_RECURSE
  "CMakeFiles/prpart_xml.dir/xml.cpp.o"
  "CMakeFiles/prpart_xml.dir/xml.cpp.o.d"
  "libprpart_xml.a"
  "libprpart_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
