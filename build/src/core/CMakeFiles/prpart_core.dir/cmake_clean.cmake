file(REMOVE_RECURSE
  "CMakeFiles/prpart_core.dir/base_partition.cpp.o"
  "CMakeFiles/prpart_core.dir/base_partition.cpp.o.d"
  "CMakeFiles/prpart_core.dir/clustering.cpp.o"
  "CMakeFiles/prpart_core.dir/clustering.cpp.o.d"
  "CMakeFiles/prpart_core.dir/compatibility.cpp.o"
  "CMakeFiles/prpart_core.dir/compatibility.cpp.o.d"
  "CMakeFiles/prpart_core.dir/connectivity.cpp.o"
  "CMakeFiles/prpart_core.dir/connectivity.cpp.o.d"
  "CMakeFiles/prpart_core.dir/covering.cpp.o"
  "CMakeFiles/prpart_core.dir/covering.cpp.o.d"
  "CMakeFiles/prpart_core.dir/optimal.cpp.o"
  "CMakeFiles/prpart_core.dir/optimal.cpp.o.d"
  "CMakeFiles/prpart_core.dir/partitioner.cpp.o"
  "CMakeFiles/prpart_core.dir/partitioner.cpp.o.d"
  "CMakeFiles/prpart_core.dir/report.cpp.o"
  "CMakeFiles/prpart_core.dir/report.cpp.o.d"
  "CMakeFiles/prpart_core.dir/result_io.cpp.o"
  "CMakeFiles/prpart_core.dir/result_io.cpp.o.d"
  "CMakeFiles/prpart_core.dir/scheme.cpp.o"
  "CMakeFiles/prpart_core.dir/scheme.cpp.o.d"
  "CMakeFiles/prpart_core.dir/schemes.cpp.o"
  "CMakeFiles/prpart_core.dir/schemes.cpp.o.d"
  "CMakeFiles/prpart_core.dir/search.cpp.o"
  "CMakeFiles/prpart_core.dir/search.cpp.o.d"
  "libprpart_core.a"
  "libprpart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
