# Empty dependencies file for prpart_core.
# This may be replaced when dependencies are built.
