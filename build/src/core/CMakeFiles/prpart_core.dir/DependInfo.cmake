
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/base_partition.cpp" "src/core/CMakeFiles/prpart_core.dir/base_partition.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/base_partition.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/prpart_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/compatibility.cpp" "src/core/CMakeFiles/prpart_core.dir/compatibility.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/compatibility.cpp.o.d"
  "/root/repo/src/core/connectivity.cpp" "src/core/CMakeFiles/prpart_core.dir/connectivity.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/connectivity.cpp.o.d"
  "/root/repo/src/core/covering.cpp" "src/core/CMakeFiles/prpart_core.dir/covering.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/covering.cpp.o.d"
  "/root/repo/src/core/optimal.cpp" "src/core/CMakeFiles/prpart_core.dir/optimal.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/optimal.cpp.o.d"
  "/root/repo/src/core/partitioner.cpp" "src/core/CMakeFiles/prpart_core.dir/partitioner.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/partitioner.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/prpart_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/report.cpp.o.d"
  "/root/repo/src/core/result_io.cpp" "src/core/CMakeFiles/prpart_core.dir/result_io.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/result_io.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "src/core/CMakeFiles/prpart_core.dir/scheme.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/scheme.cpp.o.d"
  "/root/repo/src/core/schemes.cpp" "src/core/CMakeFiles/prpart_core.dir/schemes.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/schemes.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/core/CMakeFiles/prpart_core.dir/search.cpp.o" "gcc" "src/core/CMakeFiles/prpart_core.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/design/CMakeFiles/prpart_design.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/prpart_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/prpart_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/prpart_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
