file(REMOVE_RECURSE
  "libprpart_core.a"
)
