# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("xml")
subdirs("device")
subdirs("design")
subdirs("synth")
subdirs("core")
subdirs("reconfig")
subdirs("floorplan")
subdirs("bitstream")
subdirs("cli")
subdirs("flow")
subdirs("related")
subdirs("stream")
