file(REMOVE_RECURSE
  "libprpart_stream.a"
)
