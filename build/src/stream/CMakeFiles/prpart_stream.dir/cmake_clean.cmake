file(REMOVE_RECURSE
  "CMakeFiles/prpart_stream.dir/pipeline.cpp.o"
  "CMakeFiles/prpart_stream.dir/pipeline.cpp.o.d"
  "libprpart_stream.a"
  "libprpart_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
