# Empty dependencies file for prpart_stream.
# This may be replaced when dependencies are built.
