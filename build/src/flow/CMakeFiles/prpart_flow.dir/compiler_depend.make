# Empty compiler generated dependencies file for prpart_flow.
# This may be replaced when dependencies are built.
