file(REMOVE_RECURSE
  "CMakeFiles/prpart_flow.dir/flow.cpp.o"
  "CMakeFiles/prpart_flow.dir/flow.cpp.o.d"
  "libprpart_flow.a"
  "libprpart_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prpart_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
