file(REMOVE_RECURSE
  "libprpart_flow.a"
)
