file(REMOVE_RECURSE
  "CMakeFiles/bench_special_conditions.dir/special_conditions.cpp.o"
  "CMakeFiles/bench_special_conditions.dir/special_conditions.cpp.o.d"
  "bench_special_conditions"
  "bench_special_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_special_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
