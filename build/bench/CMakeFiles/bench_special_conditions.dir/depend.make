# Empty dependencies file for bench_special_conditions.
# This may be replaced when dependencies are built.
