file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_search_quality.dir/ablation_search_quality.cpp.o"
  "CMakeFiles/bench_ablation_search_quality.dir/ablation_search_quality.cpp.o.d"
  "bench_ablation_search_quality"
  "bench_ablation_search_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_search_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
