# Empty compiler generated dependencies file for bench_ablation_search_quality.
# This may be replaced when dependencies are built.
