# Empty dependencies file for bench_budget_sensitivity.
# This may be replaced when dependencies are built.
