file(REMOVE_RECURSE
  "CMakeFiles/bench_budget_sensitivity.dir/budget_sensitivity.cpp.o"
  "CMakeFiles/bench_budget_sensitivity.dir/budget_sensitivity.cpp.o.d"
  "bench_budget_sensitivity"
  "bench_budget_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_budget_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
