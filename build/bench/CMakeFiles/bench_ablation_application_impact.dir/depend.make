# Empty dependencies file for bench_ablation_application_impact.
# This may be replaced when dependencies are built.
