file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_application_impact.dir/ablation_application_impact.cpp.o"
  "CMakeFiles/bench_ablation_application_impact.dir/ablation_application_impact.cpp.o.d"
  "bench_ablation_application_impact"
  "bench_ablation_application_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_application_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
