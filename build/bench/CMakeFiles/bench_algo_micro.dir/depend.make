# Empty dependencies file for bench_algo_micro.
# This may be replaced when dependencies are built.
