file(REMOVE_RECURSE
  "CMakeFiles/bench_algo_micro.dir/algo_micro.cpp.o"
  "CMakeFiles/bench_algo_micro.dir/algo_micro.cpp.o.d"
  "bench_algo_micro"
  "bench_algo_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algo_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
