file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_histograms.dir/fig9_histograms.cpp.o"
  "CMakeFiles/bench_fig9_histograms.dir/fig9_histograms.cpp.o.d"
  "CMakeFiles/bench_fig9_histograms.dir/sweep_common.cpp.o"
  "CMakeFiles/bench_fig9_histograms.dir/sweep_common.cpp.o.d"
  "bench_fig9_histograms"
  "bench_fig9_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
