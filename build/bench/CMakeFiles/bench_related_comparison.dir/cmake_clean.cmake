file(REMOVE_RECURSE
  "CMakeFiles/bench_related_comparison.dir/related_comparison.cpp.o"
  "CMakeFiles/bench_related_comparison.dir/related_comparison.cpp.o.d"
  "bench_related_comparison"
  "bench_related_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
