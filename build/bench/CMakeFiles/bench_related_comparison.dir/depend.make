# Empty dependencies file for bench_related_comparison.
# This may be replaced when dependencies are built.
