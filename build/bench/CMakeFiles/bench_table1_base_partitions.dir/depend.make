# Empty dependencies file for bench_table1_base_partitions.
# This may be replaced when dependencies are built.
