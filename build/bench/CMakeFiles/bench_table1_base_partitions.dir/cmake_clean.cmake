file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_base_partitions.dir/table1_base_partitions.cpp.o"
  "CMakeFiles/bench_table1_base_partitions.dir/table1_base_partitions.cpp.o.d"
  "bench_table1_base_partitions"
  "bench_table1_base_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_base_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
