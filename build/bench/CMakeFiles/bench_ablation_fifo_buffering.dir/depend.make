# Empty dependencies file for bench_ablation_fifo_buffering.
# This may be replaced when dependencies are built.
