file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fifo_buffering.dir/ablation_fifo_buffering.cpp.o"
  "CMakeFiles/bench_ablation_fifo_buffering.dir/ablation_fifo_buffering.cpp.o.d"
  "bench_ablation_fifo_buffering"
  "bench_ablation_fifo_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fifo_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
