file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fig8_sweep.dir/fig7_fig8_sweep.cpp.o"
  "CMakeFiles/bench_fig7_fig8_sweep.dir/fig7_fig8_sweep.cpp.o.d"
  "CMakeFiles/bench_fig7_fig8_sweep.dir/sweep_common.cpp.o"
  "CMakeFiles/bench_fig7_fig8_sweep.dir/sweep_common.cpp.o.d"
  "bench_fig7_fig8_sweep"
  "bench_fig7_fig8_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fig8_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
