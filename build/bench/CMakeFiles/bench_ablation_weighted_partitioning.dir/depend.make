# Empty dependencies file for bench_ablation_weighted_partitioning.
# This may be replaced when dependencies are built.
