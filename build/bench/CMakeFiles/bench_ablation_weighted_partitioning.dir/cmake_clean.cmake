file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_weighted_partitioning.dir/ablation_weighted_partitioning.cpp.o"
  "CMakeFiles/bench_ablation_weighted_partitioning.dir/ablation_weighted_partitioning.cpp.o.d"
  "bench_ablation_weighted_partitioning"
  "bench_ablation_weighted_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weighted_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
