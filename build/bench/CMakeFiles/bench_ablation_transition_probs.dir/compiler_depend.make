# Empty compiler generated dependencies file for bench_ablation_transition_probs.
# This may be replaced when dependencies are built.
