file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_transition_probs.dir/ablation_transition_probs.cpp.o"
  "CMakeFiles/bench_ablation_transition_probs.dir/ablation_transition_probs.cpp.o.d"
  "bench_ablation_transition_probs"
  "bench_ablation_transition_probs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transition_probs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
